package elasticnet

import (
	"math"
	"testing"
	"testing/quick"

	"tpascd/internal/gpusim"
	"tpascd/internal/perfmodel"
	"tpascd/internal/ridge"
	"tpascd/internal/rng"
	"tpascd/internal/engine"
	"tpascd/internal/sparse"
)

func testProblem(t testing.TB, seed uint64, n, m, nnzPerRow int, lambda, alpha float64) *Problem {
	t.Helper()
	r := rng.New(seed)
	coo := sparse.NewCOO(n, m, n*nnzPerRow)
	for i := 0; i < n; i++ {
		for k := 0; k < nnzPerRow; k++ {
			coo.Append(i, r.Intn(m), float32(r.NormFloat64()))
		}
	}
	y := make([]float32, n)
	for i := range y {
		y[i] = float32(r.NormFloat64())
	}
	rp, err := ridge.NewProblem(coo.ToCSR(), y, lambda)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProblem(rp, alpha)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestNewProblemValidation(t *testing.T) {
	p := testProblem(t, 1, 20, 10, 3, 0.1, 0.5)
	if _, err := NewProblem(p.Problem, -0.1); err == nil {
		t.Fatal("alpha < 0 accepted")
	}
	if _, err := NewProblem(p.Problem, 1.1); err == nil {
		t.Fatal("alpha > 1 accepted")
	}
	if _, err := NewProblem(nil, 0.5); err == nil {
		t.Fatal("nil problem accepted")
	}
}

func TestSoftThreshold(t *testing.T) {
	cases := []struct{ c, t, want float64 }{
		{5, 2, 3}, {-5, 2, -3}, {1, 2, 0}, {-1, 2, 0}, {0, 0, 0}, {3, 0, 3},
	}
	for _, c := range cases {
		if got := SoftThreshold(c.c, c.t); got != c.want {
			t.Fatalf("SoftThreshold(%v,%v) = %v, want %v", c.c, c.t, got, c.want)
		}
	}
}

// With α=0 the elastic-net update must equal the ridge update (eq. 2).
func TestAlphaZeroReducesToRidge(t *testing.T) {
	p := testProblem(t, 2, 40, 20, 5, 0.05, 0)
	r := rng.New(3)
	beta := make([]float32, p.M)
	for j := range beta {
		beta[j] = float32(r.NormFloat64() * 0.2)
	}
	w := make([]float32, p.N)
	p.A.MulVec(w, beta)
	for m := 0; m < p.M; m++ {
		en := p.Delta(m, w, beta[m])
		rg := p.Problem.PrimalDelta(m, w, beta[m])
		if math.Abs(float64(en-rg)) > 1e-5 {
			t.Fatalf("coordinate %d: elastic-net delta %v != ridge delta %v", m, en, rg)
		}
	}
}

// The coordinate step is the exact 1-D minimizer of F.
func TestDeltaIsExactMinimizer(t *testing.T) {
	p := testProblem(t, 3, 30, 15, 4, 0.05, 0.7)
	r := rng.New(5)
	beta := make([]float32, p.M)
	for j := range beta {
		beta[j] = float32(r.NormFloat64() * 0.3)
	}
	w := make([]float32, p.N)
	p.A.MulVec(w, beta)
	for trial := 0; trial < 15; trial++ {
		m := r.Intn(p.M)
		d := p.Delta(m, w, beta[m])
		apply := func(step float32) float64 {
			b2 := make([]float32, p.M)
			copy(b2, beta)
			b2[m] += step
			return p.Objective(b2)
		}
		best := apply(d)
		for _, off := range []float32{-0.1, -0.01, 0.01, 0.1} {
			if v := apply(d + off); v < best-1e-9 {
				t.Fatalf("coordinate %d: step %v not optimal (%v beats %v)", m, d, v, best)
			}
		}
	}
}

// Coordinate descent monotonically decreases the objective.
func TestObjectiveMonotone(t *testing.T) {
	p := testProblem(t, 4, 100, 60, 6, 0.02, 0.5)
	s := NewSequential(p, 7)
	prev := s.Objective()
	for e := 0; e < 20; e++ {
		s.RunEpoch()
		cur := s.Objective()
		if cur > prev+1e-9 {
			t.Fatalf("epoch %d increased objective: %v -> %v", e, prev, cur)
		}
		prev = cur
	}
}

func TestConvergesToKKT(t *testing.T) {
	p := testProblem(t, 5, 120, 60, 6, 0.02, 0.5)
	s := NewSequential(p, 9)
	for e := 0; e < 150; e++ {
		s.RunEpoch()
	}
	if v := p.OptimalityViolation(s.Model()); v > 1e-5 {
		t.Fatalf("KKT violation after 150 epochs = %v", v)
	}
}

// Larger α (more L1) yields sparser solutions.
func TestL1InducesSparsity(t *testing.T) {
	base := testProblem(t, 6, 150, 80, 6, 0.05, 0)
	run := func(alpha float64) int {
		p, err := NewProblem(base.Problem, alpha)
		if err != nil {
			t.Fatal(err)
		}
		s := NewSequential(p, 11)
		for e := 0; e < 100; e++ {
			s.RunEpoch()
		}
		return NNZWeights(s.Model())
	}
	dense := run(0.0)
	sparse9 := run(0.9)
	if sparse9 >= dense {
		t.Fatalf("alpha=0.9 gave %d non-zeros, alpha=0 gave %d; L1 did not sparsify", sparse9, dense)
	}
	if sparse9 == 0 {
		t.Fatal("alpha=0.9 zeroed the whole model")
	}
}

// The GPU kernel converges to the same objective as the CPU solver.
func TestGPUMatchesCPU(t *testing.T) {
	p := testProblem(t, 7, 120, 60, 6, 0.02, 0.6)
	cpu := NewSequential(p, 13)
	dev := gpusim.NewDevice(perfmodel.GPUM4000)
	gpu, err := NewGPU(p, dev, 32, 13)
	if err != nil {
		t.Fatal(err)
	}
	defer gpu.Close()
	for e := 0; e < 80; e++ {
		cpu.RunEpoch()
		gpu.RunEpoch()
	}
	oc, og := cpu.Objective(), gpu.Objective()
	if math.Abs(oc-og) > 1e-4*(1+math.Abs(oc)) {
		t.Fatalf("GPU objective %v vs CPU %v", og, oc)
	}
	if v := p.OptimalityViolation(gpu.Model()); v > 1e-4 {
		t.Fatalf("GPU KKT violation = %v", v)
	}
}

func TestGPUValidation(t *testing.T) {
	p := testProblem(t, 8, 30, 15, 3, 0.1, 0.5)
	dev := gpusim.NewDevice(perfmodel.GPUM4000)
	if _, err := NewGPU(p, dev, 33, 1); err == nil {
		t.Fatal("bad block size accepted")
	}
	small := perfmodel.GPUM4000
	small.MemBytes = 10
	tiny := gpusim.NewDevice(small)
	if _, err := NewGPU(p, tiny, 32, 1); err == nil {
		t.Fatal("OOM not detected")
	}
	if tiny.Allocated() != 0 {
		t.Fatal("failed construction leaked device memory")
	}
}

func TestGPUCloseReleases(t *testing.T) {
	p := testProblem(t, 9, 30, 15, 3, 0.1, 0.5)
	dev := gpusim.NewDevice(perfmodel.GPUM4000)
	g, err := NewGPU(p, dev, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	g.Close()
	if dev.Allocated() != 0 {
		t.Fatalf("Close leaked %d bytes", dev.Allocated())
	}
}

// Property: the objective is bounded below by 0 minus nothing — F ≥ 0 when
// computed on any finite model (quadratic + norms are nonnegative; the
// loss is nonnegative).
func TestObjectiveNonNegative(t *testing.T) {
	p := testProblem(t, 10, 40, 20, 4, 0.05, 0.5)
	r := rng.New(17)
	f := func(scaleRaw float32) bool {
		scale := float32(math.Mod(float64(scaleRaw), 4))
		if math.IsNaN(float64(scale)) {
			scale = 1
		}
		beta := make([]float32, p.M)
		for j := range beta {
			beta[j] = float32(r.NormFloat64()) * scale
		}
		return p.Objective(beta) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Ridge-vs-elasticnet cross check: at α=0 the sequential solvers of both
// packages follow the same trajectory given the same seed.
func TestRidgeTrajectoryCrossCheck(t *testing.T) {
	p := testProblem(t, 11, 80, 40, 5, 0.05, 0)
	en := NewSequential(p, 21)
	rg := engine.NewSequential(ridge.NewLoss(p.Problem, perfmodel.Primal), 21)
	for e := 0; e < 10; e++ {
		en.RunEpoch()
		rg.RunEpoch()
	}
	for j := range en.Model() {
		if math.Abs(float64(en.Model()[j]-rg.Model()[j])) > 1e-4 {
			t.Fatalf("trajectories diverged at coordinate %d: %v vs %v", j, en.Model()[j], rg.Model()[j])
		}
	}
}

func BenchmarkElasticNetEpoch(b *testing.B) {
	p := testProblem(b, 1, 2048, 1024, 16, 0.01, 0.5)
	s := NewSequential(p, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.RunEpoch()
	}
}
