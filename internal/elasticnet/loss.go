package elasticnet

import (
	"tpascd/internal/perfmodel"
)

// Loss adapts an elastic-net Problem to the engine's Loss interface:
// coordinates are features, the shared vector is w = Aβ (exactly as in
// primal ridge), and the step is the soft-thresholding update of glmnet.
// It satisfies engine.Loss structurally so this package does not depend on
// the engine.
type Loss struct {
	p *Problem
}

// NewLoss returns the elastic-net loss.
func NewLoss(p *Problem) *Loss { return &Loss{p: p} }

// Problem returns the underlying problem.
func (l *Loss) Problem() *Problem { return l.p }

// Name returns the algorithm tag.
func (l *Loss) Name() string { return "EN-SCD" }

// Form reports the formulation (features ↔ primal).
func (l *Loss) Form() perfmodel.Form { return perfmodel.Primal }

// NumCoords returns the number of features.
func (l *Loss) NumCoords() int { return l.p.M }

// SharedLen returns the number of examples.
func (l *Loss) SharedLen() int { return l.p.N }

// NNZ returns the stored entries of the data matrix.
func (l *Loss) NNZ() int64 { return int64(l.p.A.NNZ()) }

// CoordNZ returns the column a_m.
func (l *Loss) CoordNZ(c int) ([]int32, []float32) { return l.p.ACols.Col(c) }

// Residual reports the residual inner-product form Σ val·(y−w).
func (l *Loss) Residual() bool { return true }

// Labels returns the example labels.
func (l *Loss) Labels() []float32 { return l.p.Y }

// Step computes the exact soft-thresholding coordinate step from the
// residual inner product dp and the current weight.
func (l *Loss) Step(c int, dp float64, cur float32) float32 {
	return l.p.stepFromDot(c, dp, cur)
}

// UpdateCoeff returns the shared-vector coefficient: the step itself.
func (l *Loss) UpdateCoeff(c int, delta float32) float32 { return delta }

// Gap returns the KKT subgradient violation, the elastic-net analogue of
// the duality gap (recomputed from the model alone).
func (l *Loss) Gap(model []float32) float64 { return l.p.OptimalityViolation(model) }

// RecomputeShared rebuilds w = Aβ into dst.
func (l *Loss) RecomputeShared(dst, model []float32) { l.p.A.MulVec(dst, model) }

// DataBytes returns the approximate device-resident footprint of the CSC
// matrix, per-feature norms and permutation, and labels.
func (l *Loss) DataBytes() int64 {
	return l.p.ACols.Bytes() + int64(l.p.M)*12 + int64(l.p.N)*4
}
