package elasticnet

import (
	"testing"

	"tpascd/internal/ridge"
)

func TestPathBasicShape(t *testing.T) {
	base := testProblem(t, 20, 200, 80, 8, 0.05, 0) // lambda placeholder
	points, err := Path(base.Problem, 0.9, 10, 0.01, 1e-4, 200, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 10 {
		t.Fatalf("path has %d points, want 10", len(points))
	}
	// λ strictly decreasing along the path.
	for i := 1; i < len(points); i++ {
		if points[i].Lambda >= points[i-1].Lambda {
			t.Fatalf("lambda not decreasing at %d: %v >= %v", i, points[i].Lambda, points[i-1].Lambda)
		}
	}
	// At λ_max the solution is (essentially) all zero.
	if points[0].NNZ > base.M/20 {
		t.Fatalf("λ_max solution has %d non-zeros", points[0].NNZ)
	}
	// Sparsity relaxes (weakly) as λ shrinks, comparing path ends.
	if points[len(points)-1].NNZ <= points[0].NNZ {
		t.Fatalf("path end (%d nnz) not denser than start (%d nnz)",
			points[len(points)-1].NNZ, points[0].NNZ)
	}
}

func TestPathWarmStartsSaveEpochs(t *testing.T) {
	base := testProblem(t, 21, 150, 60, 6, 0.05, 0)
	points, err := Path(base.Problem, 0.8, 8, 0.05, 1e-4, 500, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Later points, warm-started, should converge in far fewer epochs than
	// the budget.
	for i := 2; i < len(points); i++ {
		if points[i].Epochs >= 500 {
			t.Fatalf("point %d (λ=%v) exhausted the epoch budget", i, points[i].Lambda)
		}
	}
}

func TestPathSolutionsAreOptimal(t *testing.T) {
	base := testProblem(t, 22, 120, 50, 5, 0.05, 0)
	points, err := Path(base.Problem, 1.0, 6, 0.05, 1e-5, 400, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Re-verify each KKT certificate independently.
	for i, pt := range points {
		lp, err := newRidge(t, base, pt.Lambda)
		if err != nil {
			t.Fatal(err)
		}
		p, err := NewProblem(lp, 1.0)
		if err != nil {
			t.Fatal(err)
		}
		if v := p.OptimalityViolation(pt.Beta); v > 1e-4 {
			t.Fatalf("path point %d (λ=%v) violates KKT by %v", i, pt.Lambda, v)
		}
	}
}

func TestPathValidation(t *testing.T) {
	base := testProblem(t, 23, 30, 15, 3, 0.05, 0)
	if _, err := Path(base.Problem, 0, 5, 0.1, 1e-4, 10, 1); err == nil {
		t.Fatal("alpha=0 accepted (no L1 term, λ_max undefined)")
	}
	if _, err := Path(base.Problem, 0.5, 1, 0.1, 1e-4, 10, 1); err == nil {
		t.Fatal("single-point path accepted")
	}
	if _, err := Path(base.Problem, 0.5, 5, 1.5, 1e-4, 10, 1); err == nil {
		t.Fatal("lambdaMinRatio > 1 accepted")
	}
}

// newRidge rebuilds a ridge problem at a given lambda from an existing one.
func newRidge(t *testing.T, p *Problem, lambda float64) (*ridge.Problem, error) {
	t.Helper()
	return ridge.NewProblem(p.A, p.Y, lambda)
}
