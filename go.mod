module tpascd

go 1.22
