package tpascd_test

import (
	"bytes"
	"testing"

	"tpascd"
)

func TestElasticNetThroughFacade(t *testing.T) {
	p := smallProblem(t)
	en, err := tpascd.NewElasticNetProblem(p, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	solver := tpascd.NewElasticNetSolver(en, 1)
	for e := 0; e < 50; e++ {
		solver.RunEpoch()
	}
	if v := en.OptimalityViolation(solver.Model()); v > 1e-4 {
		t.Fatalf("KKT violation = %v", v)
	}
	nnz := 0
	for _, b := range solver.Model() {
		if b != 0 {
			nnz++
		}
	}
	if nnz == 0 || nnz == len(solver.Model()) {
		t.Fatalf("elastic net produced degenerate sparsity: %d of %d", nnz, len(solver.Model()))
	}
}

func TestElasticNetGPUThroughFacade(t *testing.T) {
	p := smallProblem(t)
	en, err := tpascd.NewElasticNetProblem(p, 0.3)
	if err != nil {
		t.Fatal(err)
	}
	gpu, err := tpascd.NewElasticNetGPU(en, tpascd.M4000, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer gpu.Close()
	for e := 0; e < 50; e++ {
		gpu.RunEpoch()
	}
	if v := en.OptimalityViolation(gpu.Model()); v > 1e-4 {
		t.Fatalf("GPU KKT violation = %v", v)
	}
}

func TestSVMThroughFacade(t *testing.T) {
	a, y, err := tpascd.GenerateWebspam(tpascd.WebspamConfig{
		N: 600, M: 200, AvgNNZPerRow: 12, Skew: 1, NoiseRate: 0.02, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := tpascd.NewSVMProblem(a, y, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	cpu := tpascd.NewSVMSolver(p, 1)
	for e := 0; e < 40; e++ {
		cpu.RunEpoch()
	}
	if g := cpu.Gap(); g > 1e-2 {
		t.Fatalf("SVM gap = %v", g)
	}
	if acc := cpu.Accuracy(); acc < 0.8 {
		t.Fatalf("SVM train accuracy = %v", acc)
	}

	gpu, err := tpascd.NewSVMGPU(p, tpascd.TitanX, 32, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer gpu.Close()
	for e := 0; e < 40; e++ {
		gpu.RunEpoch()
	}
	if g := gpu.Gap(); g > 1e-2 {
		t.Fatalf("SVM GPU gap = %v", g)
	}
}

func TestAddingAggregationThroughFacade(t *testing.T) {
	p := smallProblem(t)
	cfg := tpascd.ClusterConfig{Aggregation: tpascd.Adding, Link: tpascd.Link10GbE}
	c, err := tpascd.NewCPUCluster(p, tpascd.Primal, 2, cfg, 5)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for e := 0; e < 10; e++ {
		if _, err := c.RunEpoch(); err != nil {
			t.Fatal(err)
		}
	}
	if c.Gamma() != 1 {
		t.Fatalf("adding gamma = %v", c.Gamma())
	}
}

func TestLogisticThroughFacade(t *testing.T) {
	a, y, err := tpascd.GenerateWebspam(tpascd.WebspamConfig{
		N: 500, M: 150, AvgNNZPerRow: 10, Skew: 1, NoiseRate: 0.02, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := tpascd.NewLogisticProblem(a, y, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	s := tpascd.NewLogisticSolver(p, 1)
	for e := 0; e < 40; e++ {
		s.RunEpoch()
	}
	if g := s.Gap(); g > 1e-2 {
		t.Fatalf("logistic gap = %v", g)
	}
	if acc := s.Accuracy(); acc < 0.75 {
		t.Fatalf("logistic accuracy = %v", acc)
	}
}

func TestTrainTestEvaluationFlow(t *testing.T) {
	a, y, err := tpascd.GenerateWebspam(tpascd.WebspamConfig{
		N: 1000, M: 300, AvgNNZPerRow: 14, Skew: 1, NoiseRate: 0.05, Seed: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The paper's 75/25 split protocol.
	trA, trY, teA, teY, err := tpascd.SplitTrainTest(a, y, 0.75, 3)
	if err != nil {
		t.Fatal(err)
	}
	p, err := tpascd.NewProblem(trA, trY, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	solver := tpascd.NewSequentialSolver(p, tpascd.Primal, 1)
	tpascd.Train(solver, 40, nil)
	scores := tpascd.Predict(teA, solver.Model())
	if auc := tpascd.AUC(scores, teY); auc < 0.62 {
		t.Fatalf("test AUC = %v; model did not generalize", auc)
	}
	if acc := tpascd.Accuracy(scores, teY); acc < 0.62 {
		t.Fatalf("test accuracy = %v", acc)
	}
}

func TestModelCheckpointRoundTrip(t *testing.T) {
	p := smallProblem(t)
	solver := tpascd.NewSequentialSolver(p, tpascd.Primal, 1)
	tpascd.Train(solver, 10, nil)
	var buf bytes.Buffer
	if err := tpascd.SaveModel(&buf, "ridge-primal", solver.Model()); err != nil {
		t.Fatal(err)
	}
	restored, err := tpascd.LoadModel(&buf, "ridge-primal")
	if err != nil {
		t.Fatal(err)
	}
	for i := range restored {
		if restored[i] != solver.Model()[i] {
			t.Fatalf("weight %d changed across checkpoint", i)
		}
	}
	// Restored model yields the same gap.
	if g1, g2 := p.GapPrimal(solver.Model()), p.GapPrimal(restored); g1 != g2 {
		t.Fatalf("gap changed across checkpoint: %v vs %v", g1, g2)
	}
}
