package tpascd_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"tpascd"
)

// The serving façade end to end: save a checkpoint through the root
// package, serve it, predict over HTTP, hot-swap via WatchCheckpoint.
func TestServingFacade(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "model.ckpt")
	save := func(w0 float32) {
		err := tpascd.SaveCheckpointFile(path, tpascd.Checkpoint{
			Kind: tpascd.KindLogistic, Dim: 3, Vectors: [][]float32{{w0, 1, -1}},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	save(2)

	c, err := tpascd.LoadCheckpointFile(path, tpascd.KindLogistic)
	if err != nil || c.Dim != 3 {
		t.Fatalf("round trip: %+v, %v", c, err)
	}
	m, err := tpascd.LoadServingModel(path)
	if err != nil || m.Kind != tpascd.KindLogistic {
		t.Fatalf("serving model: %+v, %v", m, err)
	}

	reg := tpascd.NewModelRegistry()
	if _, err := reg.LoadFile(path); err != nil {
		t.Fatal(err)
	}
	srv := tpascd.NewPredictionServer(reg, tpascd.ServerConfig{
		Batcher: tpascd.BatcherConfig{MaxWait: time.Millisecond},
	})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	watchDone := make(chan struct{})
	go func() {
		defer close(watchDone)
		tpascd.WatchCheckpoint(ctx, reg, time.Millisecond, func(err error) { t.Error(err) })
	}()

	predict := func() tpascd.Prediction {
		body := `{"indices":[0],"values":[1]}`
		resp, err := http.Post(ts.URL+"/predict", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			var msg bytes.Buffer
			msg.ReadFrom(resp.Body)
			t.Fatalf("status %d: %s", resp.StatusCode, msg.String())
		}
		var pr struct {
			Predictions []tpascd.Prediction `json:"predictions"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
			t.Fatal(err)
		}
		return pr.Predictions[0]
	}

	if p := predict(); p.Margin != 2 || p.ModelVersion != 1 {
		t.Fatalf("initial prediction: %+v", p)
	}

	save(5) // hot swap through the watcher
	deadline := time.Now().Add(5 * time.Second)
	for reg.Version() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("watcher never installed the new checkpoint")
		}
		time.Sleep(time.Millisecond)
	}
	if p := predict(); p.Margin != 5 || p.ModelVersion != 2 {
		t.Fatalf("post-swap prediction: %+v", p)
	}
	cancel()
	<-watchDone
}
