// Package tpascd is a pure-Go reproduction of "Large-Scale Stochastic
// Learning using GPUs" (Parnell, Dünner, Atasu, Sifalakis, Pozidis; IBM
// Research – Zurich, 2017, arXiv:1702.07005).
//
// It provides:
//
//   - ridge regression in its primal and dual formulations, solved by
//     stochastic coordinate descent (SCD) with exact per-coordinate
//     minimization and duality-gap convergence certificates;
//   - the CPU solver family of the paper: sequential SCD, asynchronous
//     A-SCD (atomic shared-vector updates) and PASSCoDe-Wild (racy
//     updates) running on real goroutines;
//   - TPA-SCD, the paper's twice-parallel asynchronous GPU algorithm,
//     executing on a structural GPU simulator (real racing thread blocks
//     and float atomics; modeled wall-clock — see the perfmodel and gpusim
//     documentation for the substitution contract);
//   - distributed training across K workers with data partitioned by
//     feature (primal) or example (dual), with averaging aggregation
//     (Algorithm 3) or the paper's adaptive aggregation (Algorithm 4),
//     over in-process or TCP communicators;
//   - synthetic generators for webspam-like and criteo-like datasets, and
//     a harness regenerating every figure of the paper's evaluation.
//
// The quickest way in:
//
//	a, y, _ := tpascd.GenerateWebspam(tpascd.WebspamDefaults())
//	p, _ := tpascd.NewProblem(a, y, 0.001)
//	solver := tpascd.NewSequentialSolver(p, tpascd.Primal, 42)
//	tpascd.Train(solver, 50, func(epoch int, gap float64) bool {
//		return gap > 1e-6 // keep going while true
//	})
package tpascd

import (
	"io"

	"tpascd/internal/datasets"
	"tpascd/internal/engine"
	"tpascd/internal/gpusim"
	"tpascd/internal/perfmodel"
	"tpascd/internal/ridge"
	"tpascd/internal/sparse"
)

// Form selects the ridge-regression formulation: Primal iterates over
// features (data stored by column), Dual over examples (data stored by
// row).
type Form = perfmodel.Form

// The two formulations.
const (
	Primal = perfmodel.Primal
	Dual   = perfmodel.Dual
)

// Matrix types (compressed sparse row/column and coordinate list).
type (
	// CSR is a compressed sparse row matrix.
	CSR = sparse.CSR
	// CSC is a compressed sparse column matrix.
	CSC = sparse.CSC
	// COO is a coordinate-list matrix, the interchange format.
	COO = sparse.COO
)

// Problem is a ridge-regression training problem: data, labels, λ.
type Problem = ridge.Problem

// NewProblem bundles a CSR data matrix, labels and regularization constant.
func NewProblem(a *CSR, y []float32, lambda float64) (*Problem, error) {
	return ridge.NewProblem(a, y, lambda)
}

// LoadLibSVM reads a LIBSVM-format dataset and builds a Problem. numCols
// may be zero to infer the feature count.
func LoadLibSVM(r io.Reader, numCols int, lambda float64) (*Problem, error) {
	coo, y, err := sparse.ReadLibSVM(r, numCols)
	if err != nil {
		return nil, err
	}
	return ridge.NewProblem(coo.ToCSR(), y, lambda)
}

// WriteLibSVM writes a CSR matrix with labels in LIBSVM text format.
func WriteLibSVM(w io.Writer, a *CSR, y []float32) error {
	return sparse.WriteLibSVM(w, a, y)
}

// Dataset generation.

// WebspamConfig configures the webspam-like synthetic generator.
type WebspamConfig = datasets.WebspamConfig

// CriteoConfig configures the criteo-like synthetic generator.
type CriteoConfig = datasets.CriteoConfig

// WebspamDefaults returns the laptop-scale webspam-like defaults.
func WebspamDefaults() WebspamConfig { return datasets.WebspamDefault() }

// CriteoDefaults returns the laptop-scale criteo-like defaults.
func CriteoDefaults() CriteoConfig { return datasets.CriteoDefault() }

// GenerateWebspam creates a webspam-like sparse dataset.
func GenerateWebspam(cfg WebspamConfig) (*CSR, []float32, error) { return datasets.Webspam(cfg) }

// GenerateCriteo creates a criteo-like one-hot dataset.
func GenerateCriteo(cfg CriteoConfig) (*CSR, []float32, error) { return datasets.Criteo(cfg) }

// Solvers.

// Solver is a configured single-node training algorithm; one RunEpoch call
// is one permuted pass over the coordinates. Gap reports the convergence
// certificate recomputed honestly from the model. Every solver family —
// ridge, elastic net, SVM, logistic, and the SGD baseline — satisfies it.
type Solver = engine.Solver

// Loss is the pluggable per-family contract of the coordinate-descent
// engine: coordinate access, the exact step (including prox/box), the
// shared-vector coefficient, and the convergence certificate. Implement it
// to get sequential, async-atomic, wild and simulated-GPU solvers for a
// new loss for free.
type Loss = engine.Loss

// EpochEvent is the engine's per-epoch instrumentation record.
type EpochEvent = engine.EpochEvent

// EpochHook observes one training epoch (see Train).
type EpochHook = engine.Hook

// DriverSpec selects and configures a solver driver by its engine-registry
// name ("scd", "a-scd", "wild", "syscd", "tpa-scd", or a registered alias;
// empty = sequential). One spec type describes every driver — fields a
// driver does not use are ignored — so it can flow unchanged from a
// -solver flag through the facade and the distributed locals.
type DriverSpec = engine.DriverSpec

// Drivers returns the canonical names of every registered solver driver,
// sorted — the source of truth for flag choices and error messages.
func Drivers() []string { return engine.Drivers() }

// DriverList returns the registered driver names joined for flag usage
// strings.
func DriverList() string { return engine.DriverList() }

// CanonicalDriver resolves a driver name or alias to its canonical
// registered name (empty = the sequential driver); the error for an
// unknown name lists what is registered.
func CanonicalDriver(name string) (string, error) { return engine.Canonical(name) }

// Device is a simulated GPU device. Put one in DriverSpec.Device to make
// the tpa-scd driver constructible through NewSolverSpec/NewSolverFor;
// CPU drivers ignore it.
type Device = gpusim.Device

// NewDevice returns a fresh simulated device of the given profile.
func NewDevice(profile GPUProfile) *Device { return gpusim.NewDevice(profile) }

// NewSolverSpec builds a ridge solver for the given formulation with the
// driver named in the spec, resolved through the engine registry. Solvers
// that hold device memory additionally implement interface{ Close() }.
func NewSolverSpec(p *Problem, form Form, spec DriverSpec) (Solver, error) {
	return engine.NewSolver(ridge.NewLoss(p, form), spec)
}

// NewSolverFor builds a solver for any Loss (ridge, elastic net, SVM,
// logistic, or user-implemented) with the driver named in the spec — the
// single construction path every layer funnels through.
func NewSolverFor(l Loss, spec DriverSpec) (Solver, error) {
	return engine.NewSolver(l, spec)
}

// RidgeLoss returns the engine Loss of a ridge problem in the given
// formulation, for use with NewSolverFor.
func RidgeLoss(p *Problem, form Form) Loss { return ridge.NewLoss(p, form) }

// mustSolver unwraps registry construction for the always-registered
// built-in drivers the legacy constructors name.
func mustSolver(s Solver, err error) Solver {
	if err != nil {
		panic(err)
	}
	return s
}

// NewSequentialSolver returns sequential SCD (Algorithm 1 of the paper).
func NewSequentialSolver(p *Problem, form Form, seed uint64) Solver {
	return mustSolver(NewSolverSpec(p, form, DriverSpec{Name: engine.DriverSequential, Seed: seed}))
}

// NewAtomicSolver returns A-SCD: threads goroutines with atomic (lossless)
// shared-vector updates.
func NewAtomicSolver(p *Problem, form Form, threads int, seed uint64) Solver {
	return mustSolver(NewSolverSpec(p, form, DriverSpec{Name: engine.DriverAtomic, Threads: threads, Seed: seed}))
}

// NewWildSolver returns PASSCoDe-Wild: threads goroutines with racy
// shared-vector updates; fast but converges to a solution violating the
// optimality conditions.
func NewWildSolver(p *Problem, form Form, threads int, seed uint64) Solver {
	return mustSolver(NewSolverSpec(p, form, DriverSpec{Name: engine.DriverWild, Threads: threads, Seed: seed}))
}

// NewSyscdSolver returns the SySCD-style bucketed solver: threads
// goroutines over cache-line-aware coordinate buckets (bucketSize
// coordinates each, 0 = one cache line) with per-thread shared-vector
// replicas merged periodically — no atomics on the hot path and no lost
// updates.
func NewSyscdSolver(p *Problem, form Form, threads, bucketSize int, seed uint64) Solver {
	return mustSolver(NewSolverSpec(p, form, DriverSpec{
		Name: engine.DriverSyscd, Threads: threads, BucketSize: bucketSize, Seed: seed,
	}))
}

// GPUProfile describes a simulated GPU (SM count, memory bandwidth and
// capacity, calibrated efficiencies).
type GPUProfile = perfmodel.GPUProfile

// The two devices the paper evaluates.
var (
	// M4000 models the NVIDIA Quadro M4000 (8 GB, 192 GB/s).
	M4000 = perfmodel.GPUM4000
	// TitanX models the NVIDIA GeForce GTX Titan X (12 GB, 336 GB/s).
	TitanX = perfmodel.GPUTitanX
)

// GPUSolver is TPA-SCD running on a simulated device. Beyond the Solver
// interface it reports modeled per-epoch device seconds and must be
// Closed to release simulated device memory.
type GPUSolver struct {
	*engine.GPU
}

// NewGPUSolver places the problem on a fresh simulated device of the given
// profile and returns a TPA-SCD solver (Algorithm 2 of the paper). It
// fails if the dataset does not fit in device memory — the constraint that
// motivates distributed training.
func NewGPUSolver(p *Problem, form Form, profile GPUProfile, blockSize int, seed uint64) (*GPUSolver, error) {
	s, err := NewSolverSpec(p, form, DriverSpec{
		Name: engine.DriverGPU, Device: NewDevice(profile), BlockSize: blockSize, Seed: seed,
	})
	if err != nil {
		return nil, err
	}
	return &GPUSolver{GPU: s.(*engine.GPU)}, nil
}

// Train runs epochs until the budget is exhausted or keepGoing returns
// false; it returns the number of epochs performed and the final duality
// gap. keepGoing may be nil to train for exactly epochs epochs. Optional
// hooks observe every epoch (gap, work counters).
func Train(s Solver, epochs int, keepGoing func(epoch int, gap float64) bool, hooks ...EpochHook) (int, float64) {
	return engine.Train(s, epochs, 0, keepGoing, hooks...)
}
