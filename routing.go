package tpascd

import (
	"net/http"

	"tpascd/internal/backoff"
	"tpascd/internal/route"
)

// Routing: a fleet of prediction servers goes behind one front door
// through this façade over internal/route — the Router health-probes
// every replica, balances /predict across the routable ones, retries
// and hedges around stragglers and failures within explicit budgets,
// and degrades to a bounded stale-answer cache when nothing is
// routable. See cmd/predrouter for the runnable front end and the
// "Serving fleet" section of the README for the full topology.

// Router load-balances POST /predict over predserve replicas with
// health gating, bounded retries, tail-latency hedging and stale-cache
// degradation.
type Router = route.Router

// RouterConfig tunes a Router; RouterProbeConfig the health prober and
// eviction state machine inside it.
type (
	RouterConfig      = route.Config
	RouterProbeConfig = route.ProbeConfig
)

// RouterReplicaStatus is one replica's state as reported on the
// router's GET /replicas endpoint.
type RouterReplicaStatus = route.ReplicaStatus

// RouterChaosConfig drives seed-deterministic fault injection on the
// router's outbound HTTP path (replica kills, truncated responses,
// added latency).
type RouterChaosConfig = route.ChaosConfig

// BackoffPolicy shapes a jittered exponential backoff, shared by the
// cluster dialer and the router's re-probing of evicted replicas.
type BackoffPolicy = backoff.Policy

// NewRouter validates the config, registers metrics and starts the
// health probers. Serve its Handler with net/http; Close stops probing.
func NewRouter(cfg RouterConfig) (*Router, error) { return route.New(cfg) }

// RouterChaosTransport wraps an HTTP transport with seed-driven fault
// injection; nil wraps http.DefaultTransport. Hand the result to
// RouterConfig.Transport so probes and proxied requests share it.
func RouterChaosTransport(rt http.RoundTripper, cfg RouterChaosConfig) http.RoundTripper {
	return route.ChaosTransport(rt, cfg)
}
