// TCP cluster example: the same distributed algorithm the other examples
// run in-process, but over real TCP sockets — one goroutine per rank here
// for convenience, though each rank only ever touches its Comm, its data
// partition and its local solver, so the ranks could equally be separate
// processes on separate machines (pass rank 0 ListenTCP's address to the
// workers).
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"tpascd"
)

const (
	k      = 4
	epochs = 30
)

func main() {
	a, y, err := tpascd.GenerateWebspam(tpascd.WebspamConfig{
		N: 8192, M: 4096, AvgNNZPerRow: 32, Skew: 1, NoiseRate: 0.05, Seed: 21,
	})
	if err != nil {
		log.Fatal(err)
	}
	p, err := tpascd.NewProblem(a, y, 0.001)
	if err != nil {
		log.Fatal(err)
	}

	// Partition the examples (dual form) across the ranks.
	parts := tpascd.PartitionRandom(p.N, k, 1)
	cfg := tpascd.ClusterConfig{Aggregation: tpascd.Adaptive, Link: tpascd.Link10GbE}

	// Failure detection: a dead or stalled rank surfaces as a typed
	// *tpascd.ErrPeerDown within the collective timeout instead of
	// hanging the cluster, and the whole group must assemble within the
	// join deadline (workers retry their dial with backoff under it, so
	// master/worker startup order doesn't matter).
	commCfg := tpascd.DefaultCommConfig()
	commCfg.CollectiveTimeout = 10 * time.Second
	commCfg.JoinTimeout = 30 * time.Second

	// Rank 0 listens; the bound address is what remote workers would dial.
	master, addr, err := tpascd.ListenTCPConfig("127.0.0.1:0", k, commCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("master listening on %s, waiting for %d workers\n", addr, k-1)

	var wg sync.WaitGroup
	gaps := make([]float64, k)
	runRank := func(rank int, comm tpascd.Comm) {
		defer wg.Done()
		defer comm.Close()
		view := tpascd.PartitionView(p, tpascd.Dual, parts[rank])
		local := tpascd.NewSequentialLocal(view, uint64(rank)+100)
		w, err := tpascd.NewWorker(comm, local, view, cfg)
		if err != nil {
			log.Fatalf("rank %d: %v", rank, err)
		}
		for e := 1; e <= epochs; e++ {
			if _, err := w.RunEpoch(); err != nil {
				log.Fatalf("rank %d epoch %d: %v", rank, e, err)
			}
			if rank == 0 && e%10 == 0 {
				gap, err := w.Gap()
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("epoch %2d  collective gap %.3e  γ=%.3f\n", e, gap, w.Gamma())
			} else if rank != 0 && e%10 == 0 {
				// Gap is collective: every rank must participate.
				if _, err := w.Gap(); err != nil {
					log.Fatalf("rank %d gap: %v", rank, err)
				}
			}
		}
		g, err := w.Gap()
		if err != nil {
			log.Fatalf("rank %d final gap: %v", rank, err)
		}
		gaps[rank] = g
	}

	wg.Add(1)
	go runRank(0, master)
	for r := 1; r < k; r++ {
		comm, err := tpascd.DialTCPConfig(addr, r, k, commCfg)
		if err != nil {
			log.Fatal(err)
		}
		wg.Add(1)
		go runRank(r, comm)
	}
	wg.Wait()

	for r := 1; r < k; r++ {
		if gaps[r] != gaps[0] {
			log.Fatalf("ranks disagree on the final gap: %v vs %v", gaps[r], gaps[0])
		}
	}
	fmt.Printf("all %d ranks agree: final duality gap %.3e over real TCP\n", k, gaps[0])
}
