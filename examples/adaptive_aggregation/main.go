// Adaptive aggregation example: the paper's novel contribution
// (Algorithm 4). Compare averaging (γ = 1/K) against the closed-form
// optimal aggregation parameter computed distributedly each epoch, and
// watch γ* settle well above 1/K — Figs. 4 and 5 in miniature.
package main

import (
	"fmt"
	"log"

	"tpascd"
)

func main() {
	a, y, err := tpascd.GenerateWebspam(tpascd.WebspamDefaults())
	if err != nil {
		log.Fatal(err)
	}
	p, err := tpascd.NewProblem(a, y, 0.001)
	if err != nil {
		log.Fatal(err)
	}

	const (
		k      = 8
		epochs = 60
	)
	fmt.Printf("problem: %d×%d, K=%d workers, primal form (features partitioned)\n\n", p.N, p.M, k)

	for _, agg := range []tpascd.Aggregation{tpascd.Averaging, tpascd.Adaptive} {
		cfg := tpascd.ClusterConfig{Aggregation: agg, Link: tpascd.Link10GbE}
		c, err := tpascd.NewCPUCluster(p, tpascd.Primal, k, cfg, 7)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("--- %s aggregation ---\n", agg)
		for e := 1; e <= epochs; e++ {
			if _, err := c.RunEpoch(); err != nil {
				log.Fatal(err)
			}
			if e%10 == 0 {
				gap, err := c.Gap()
				if err != nil {
					log.Fatal(err)
				}
				fmt.Printf("epoch %2d  gap %.3e  γ=%.3f\n", e, gap, c.Gamma())
			}
		}
		fmt.Println()
		c.Close()
	}

	fmt.Printf("averaging always applies γ = 1/K = %.3f; the adaptive optimum settles\n", 1.0/k)
	fmt.Println("substantially higher, which is why it converges in fewer epochs.")
}
