// Quickstart: generate a small sparse dataset, train ridge regression with
// sequential SCD (Algorithm 1 of the paper), and watch the duality gap —
// the scale-free convergence certificate — fall to zero.
package main

import (
	"fmt"
	"log"

	"tpascd"
)

func main() {
	// A webspam-like sparse dataset: 4096 examples, 2048 features.
	a, y, err := tpascd.GenerateWebspam(tpascd.WebspamConfig{
		N: 4096, M: 2048, AvgNNZPerRow: 32, Skew: 1, NoiseRate: 0.05, Seed: 42,
	})
	if err != nil {
		log.Fatal(err)
	}
	p, err := tpascd.NewProblem(a, y, 0.001)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("problem: %d examples × %d features, %d non-zeros, λ=%g\n",
		p.N, p.M, p.A.NNZ(), p.Lambda)

	solver := tpascd.NewSequentialSolver(p, tpascd.Primal, 1)
	epochs, gap := tpascd.Train(solver, 100, func(e int, g float64) bool {
		if e%10 == 0 {
			fmt.Printf("epoch %3d  duality gap %.3e\n", e, g)
		}
		return g > 1e-7 // train until the gap certificate is tight
	})
	fmt.Printf("converged to gap %.3e in %d epochs\n", gap, epochs)

	// The model weights are ready for predictions: score = ⟨a_i, β⟩.
	beta := solver.Model()
	fmt.Printf("model has %d weights; β[0..4] = %v\n", len(beta), beta[:5])
}
