// GPU example: run TPA-SCD (Algorithm 2 of the paper) on the simulated
// M4000 and Titan X devices and compare against sequential SCD — the
// single-device experiment family of Figs. 1 and 2.
//
// Convergence is computed for real (thread blocks race on the shared
// vector with atomic float additions); the reported seconds come from the
// calibrated device performance models.
package main

import (
	"fmt"
	"log"

	"tpascd"
)

func main() {
	a, y, err := tpascd.GenerateWebspam(tpascd.WebspamDefaults())
	if err != nil {
		log.Fatal(err)
	}
	p, err := tpascd.NewProblem(a, y, 0.001)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("problem: %d×%d, %d non-zeros (dual form: data stored by example)\n\n", p.N, p.M, p.A.NNZ())

	const epochs = 30

	// CPU reference.
	seq := tpascd.NewSequentialSolver(p, tpascd.Dual, 7)
	_, seqGap := tpascd.Train(seq, epochs, nil)
	fmt.Printf("%-22s gap %.3e after %d epochs\n", seq.Name(), seqGap, epochs)

	// The two GPUs of the paper. Each solver holds simulated device memory,
	// so release it deterministically even if training panics.
	for _, profile := range []tpascd.GPUProfile{tpascd.M4000, tpascd.TitanX} {
		func() {
			solver, err := tpascd.NewGPUSolver(p, tpascd.Dual, profile, 64, 7)
			if err != nil {
				log.Fatal(err)
			}
			defer solver.Close()
			_, gap := tpascd.Train(solver, epochs, nil)
			fmt.Printf("%-22s gap %.3e after %d epochs, %.3f simulated ms/epoch\n",
				solver.Name(), gap, epochs, solver.EpochSeconds()*1e3)
		}()
	}

	fmt.Println("\nTPA-SCD matches the sequential gap-vs-epoch trajectory (atomic")
	fmt.Println("updates keep model and shared vector consistent) while each epoch")
	fmt.Println("costs a fraction of the CPU time on the modeled devices.")
}
