// Distributed SVM example: stochastic dual coordinate ascent across K
// workers — the problem CoCoA (reference [7] of the paper) was built for —
// with the adaptive-aggregation idea of the paper's Algorithm 4 carried
// over to the SVM dual (closed-form optimal γ, clamped to keep every dual
// variable inside its box).
package main

import (
	"fmt"
	"log"
	"sync"

	"tpascd"
)

const (
	k      = 4
	epochs = 30
)

func main() {
	a, y, err := tpascd.GenerateWebspam(tpascd.WebspamConfig{
		N: 8192, M: 2048, AvgNNZPerRow: 24, Skew: 1, NoiseRate: 0.02, Seed: 33,
	})
	if err != nil {
		log.Fatal(err)
	}
	lambda := 0.001
	parts := tpascd.PartitionRandom(len(y), k, 1)

	for _, adaptive := range []bool{false, true} {
		comms, err := tpascd.InProcComms(k)
		if err != nil {
			log.Fatal(err)
		}
		workers := make([]*tpascd.SVMDistWorker, k)
		for r := 0; r < k; r++ {
			localA := a.SelectRows(parts[r])
			localY := make([]float32, len(parts[r]))
			for i, id := range parts[r] {
				localY[i] = y[id]
			}
			w, err := tpascd.NewSVMDistWorker(comms[r], localA, localY, lambda, len(y), adaptive, uint64(r))
			if err != nil {
				log.Fatal(err)
			}
			workers[r] = w
		}
		var gap float64
		var wg sync.WaitGroup
		for r := 0; r < k; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				for e := 0; e < epochs; e++ {
					if err := workers[r].RunEpoch(); err != nil {
						log.Fatalf("rank %d: %v", r, err)
					}
				}
				g, err := workers[r].Gap()
				if err != nil {
					log.Fatalf("rank %d gap: %v", r, err)
				}
				if r == 0 {
					gap = g
				}
			}(r)
		}
		wg.Wait()
		mode := "averaging (γ=1/K)"
		if adaptive {
			mode = fmt.Sprintf("adaptive (settled γ=%.3f)", workers[0].Gamma())
		}
		fmt.Printf("K=%d SVM, %-30s duality gap %.4e after %d epochs\n", k, mode, gap, epochs)
		for _, c := range comms {
			c.Close()
		}
	}
	fmt.Println("\nthe adaptive γ — the paper's Algorithm 4 idea carried to the SVM dual —")
	fmt.Println("converges faster per epoch than fixed averaging, with box feasibility kept")
}
