// SVM example: train a hinge-loss support vector machine with stochastic
// dual coordinate ascent (SDCA, reference [9] of the paper) — the second
// problem class the paper's introduction motivates — on both the CPU and
// the simulated GPU, with the duality gap as the stopping certificate.
package main

import (
	"fmt"
	"log"

	"tpascd"
)

func main() {
	// GenerateWebspam produces ±1 labels from a sparse ground truth, so
	// it doubles as an SVM classification dataset.
	a, y, err := tpascd.GenerateWebspam(tpascd.WebspamConfig{
		N: 4096, M: 1024, AvgNNZPerRow: 24, Skew: 1, NoiseRate: 0.02, Seed: 5,
	})
	if err != nil {
		log.Fatal(err)
	}
	p, err := tpascd.NewSVMProblem(a, y, 0.001)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SVM: %d examples × %d features, λ=%g\n\n", p.N, p.M, p.Lambda)

	solver := tpascd.NewSVMSolver(p, 1)
	for e := 1; e <= 30; e++ {
		solver.RunEpoch()
		if e%5 == 0 {
			fmt.Printf("epoch %2d  duality gap %.4e  train accuracy %.2f%%\n",
				e, solver.Gap(), 100*solver.Accuracy())
		}
	}

	// The same SDCA updates as a TPA-SCD kernel on the simulated GPU:
	// one thread block per example, atomic updates to the weight vector.
	gpu, err := tpascd.NewSVMGPU(p, tpascd.TitanX, 64, 1)
	if err != nil {
		log.Fatal(err)
	}
	defer gpu.Close()
	for e := 0; e < 30; e++ {
		gpu.RunEpoch()
	}
	fmt.Printf("\nTPA-SCD kernel (Titan X): duality gap %.4e after 30 epochs\n", gpu.Gap())
}
