// Elastic-net example: the paper's introduction motivates stochastic
// coordinate descent for elastic-net regression (the glmnet problem); the
// same shared-vector machinery solves it with soft-thresholding updates,
// trading a little accuracy for a much sparser model as the L1 mixing
// parameter α grows.
package main

import (
	"fmt"
	"log"

	"tpascd"
)

func main() {
	a, y, err := tpascd.GenerateWebspam(tpascd.WebspamConfig{
		N: 4096, M: 2048, AvgNNZPerRow: 32, Skew: 1, NoiseRate: 0.05, Seed: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	ridge, err := tpascd.NewProblem(a, y, 0.01)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("alpha  objective      non-zero weights  KKT violation")
	for _, alpha := range []float64{0.0, 0.25, 0.5, 0.75, 0.95} {
		p, err := tpascd.NewElasticNetProblem(ridge, alpha)
		if err != nil {
			log.Fatal(err)
		}
		solver := tpascd.NewElasticNetSolver(p, 3)
		for e := 0; e < 60; e++ {
			solver.RunEpoch()
		}
		beta := solver.Model()
		nnz := 0
		for _, b := range beta {
			if b != 0 {
				nnz++
			}
		}
		fmt.Printf("%.2f   %.6f     %5d / %d        %.2e\n",
			alpha, solver.Objective(), nnz, len(beta), p.OptimalityViolation(beta))
	}

	// The same problem runs as a TPA-SCD kernel on the simulated GPU.
	p, _ := tpascd.NewElasticNetProblem(ridge, 0.5)
	gpu, err := tpascd.NewElasticNetGPU(p, tpascd.TitanX, 64, 3)
	if err != nil {
		log.Fatal(err)
	}
	defer gpu.Close()
	for e := 0; e < 60; e++ {
		gpu.RunEpoch()
	}
	fmt.Printf("\nTPA-SCD kernel (Titan X), alpha=0.5: objective %.6f, KKT violation %.2e\n",
		gpu.Objective(), p.OptimalityViolation(gpu.Model()))
}
