// Distributed example: scale dual ridge regression across K in-process
// workers (Algorithm 3 of the paper), each training on its own partition
// of the examples, with shared-vector deltas aggregated every epoch —
// the Fig. 3 experiment in miniature.
package main

import (
	"fmt"
	"log"

	"tpascd"
)

func main() {
	a, y, err := tpascd.GenerateWebspam(tpascd.WebspamDefaults())
	if err != nil {
		log.Fatal(err)
	}
	p, err := tpascd.NewProblem(a, y, 0.001)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("problem: %d×%d, %d non-zeros\n\n", p.N, p.M, p.A.NNZ())

	const epochs = 25
	for _, k := range []int{1, 2, 4, 8} {
		cfg := tpascd.ClusterConfig{Aggregation: tpascd.Averaging, Link: tpascd.Link10GbE}
		c, err := tpascd.NewCPUCluster(p, tpascd.Dual, k, cfg, 99)
		if err != nil {
			log.Fatal(err)
		}
		var total tpascd.Breakdown
		for e := 0; e < epochs; e++ {
			bd, err := c.RunEpoch()
			if err != nil {
				log.Fatal(err)
			}
			total.Add(bd)
		}
		gap, err := c.Gap()
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("K=%d  gap %.3e after %d epochs  (simulated: %.2fms compute, %.2fms network)\n",
			k, gap, epochs, total.HostComp*1e3, total.Network*1e3)
		c.Close()
	}

	fmt.Println("\nMore workers converge slower per epoch (each works against an")
	fmt.Println("out-of-date shared vector) but each epoch processes 1/K of the data —")
	fmt.Println("the trade-off that adaptive aggregation (see the next example) improves.")
}
