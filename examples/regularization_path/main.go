// Regularization-path example: the warm-started λ path of the glmnet
// paper (reference [4] of the paper — the source of the sequential SCD
// algorithm), computed with the same coordinate-descent machinery. Watch
// the active set grow as λ shrinks from λ_max (all-zero model) downward.
package main

import (
	"fmt"
	"log"

	"tpascd"
)

func main() {
	a, y, err := tpascd.GenerateWebspam(tpascd.WebspamConfig{
		N: 2048, M: 1024, AvgNNZPerRow: 24, Skew: 1, NoiseRate: 0.05, Seed: 12,
	})
	if err != nil {
		log.Fatal(err)
	}
	// λ here is only a placeholder; the path supplies its own values.
	p, err := tpascd.NewProblem(a, y, 1)
	if err != nil {
		log.Fatal(err)
	}

	points, err := tpascd.ElasticNetPath(p, 0.9, 12, 0.002, 1e-4, 300, 1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("      λ        objective   active   epochs")
	for _, pt := range points {
		fmt.Printf("%12.5g  %10.6f  %5d    %4d\n", pt.Lambda, pt.Objective, pt.NNZ, pt.Epochs)
	}
	fmt.Println("\nwarm starts make each successive λ cheap; the active set grows as λ falls")
}
