package tpascd_test

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"tpascd"
)

func smallProblem(t testing.TB) *tpascd.Problem {
	t.Helper()
	a, y, err := tpascd.GenerateWebspam(tpascd.WebspamConfig{
		N: 800, M: 400, AvgNNZPerRow: 12, Skew: 1, NoiseRate: 0.05, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := tpascd.NewProblem(a, y, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestQuickstartFlow(t *testing.T) {
	p := smallProblem(t)
	solver := tpascd.NewSequentialSolver(p, tpascd.Primal, 42)
	epochs, gap := tpascd.Train(solver, 60, func(e int, g float64) bool { return g > 1e-6 })
	if gap > 1e-6 {
		t.Fatalf("did not reach 1e-6 in %d epochs: gap=%v", epochs, gap)
	}
	if epochs >= 60 {
		t.Logf("needed all %d epochs (gap %v)", epochs, gap)
	}
}

func TestTrainWithoutCallback(t *testing.T) {
	p := smallProblem(t)
	solver := tpascd.NewSequentialSolver(p, tpascd.Dual, 42)
	epochs, gap := tpascd.Train(solver, 10, nil)
	if epochs != 10 {
		t.Fatalf("epochs = %d", epochs)
	}
	if gap <= 0 {
		t.Fatalf("gap = %v", gap)
	}
}

func TestGPUSolverFlow(t *testing.T) {
	p := smallProblem(t)
	solver, err := tpascd.NewGPUSolver(p, tpascd.Dual, tpascd.TitanX, 64, 7)
	if err != nil {
		t.Fatal(err)
	}
	defer solver.Close()
	_, gap := tpascd.Train(solver, 40, nil)
	if gap > 1e-4 {
		t.Fatalf("GPU solver gap after 40 epochs = %v", gap)
	}
	if solver.EpochSeconds() <= 0 {
		t.Fatal("no modeled epoch time")
	}
}

func TestAsyncSolversThroughFacade(t *testing.T) {
	p := smallProblem(t)
	for _, s := range []tpascd.Solver{
		tpascd.NewAtomicSolver(p, tpascd.Primal, 4, 1),
		tpascd.NewWildSolver(p, tpascd.Primal, 4, 1),
	} {
		_, gap := tpascd.Train(s, 20, nil)
		if gap >= 1 {
			t.Fatalf("%s made no progress: gap %v", s.Name(), gap)
		}
	}
}

func TestCPUClusterFlow(t *testing.T) {
	p := smallProblem(t)
	cfg := tpascd.ClusterConfig{Aggregation: tpascd.Adaptive, Link: tpascd.Link10GbE}
	c, err := tpascd.NewCPUCluster(p, tpascd.Primal, 4, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var total tpascd.Breakdown
	for e := 0; e < 50; e++ {
		bd, err := c.RunEpoch()
		if err != nil {
			t.Fatal(err)
		}
		total.Add(bd)
	}
	gap, err := c.Gap()
	if err != nil {
		t.Fatal(err)
	}
	if gap > 1e-3 {
		t.Fatalf("cluster gap = %v", gap)
	}
	if total.Total() <= 0 {
		t.Fatal("no simulated time accumulated")
	}
	if c.Gamma() <= 0 {
		t.Fatalf("gamma = %v", c.Gamma())
	}
}

func TestGPUClusterFlow(t *testing.T) {
	p := smallProblem(t)
	cfg := tpascd.ClusterConfig{Aggregation: tpascd.Averaging, Link: tpascd.LinkPCIePeer}
	c, err := tpascd.NewGPUCluster(p, tpascd.Dual, 2, tpascd.M4000, 32, cfg, 3)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for e := 0; e < 40; e++ {
		if _, err := c.RunEpoch(); err != nil {
			t.Fatal(err)
		}
	}
	gap, err := c.Gap()
	if err != nil {
		t.Fatal(err)
	}
	if gap > 1e-2 {
		t.Fatalf("GPU cluster gap = %v", gap)
	}
}

// Custom distributed driver over real TCP, through the public API only.
func TestCustomWorkerOverTCP(t *testing.T) {
	p := smallProblem(t)
	const k = 3
	parts := tpascd.PartitionRandom(p.M, k, 99)
	cfg := tpascd.ClusterConfig{Aggregation: tpascd.Adaptive, Link: tpascd.Link10GbE}

	master, addr, err := tpascd.ListenTCP("127.0.0.1:0", k)
	if err != nil {
		t.Fatal(err)
	}
	comms := make([]tpascd.Comm, k)
	comms[0] = master
	var dialWG sync.WaitGroup
	for r := 1; r < k; r++ {
		dialWG.Add(1)
		go func(r int) {
			defer dialWG.Done()
			c, err := tpascd.DialTCP(addr, r, k)
			if err != nil {
				t.Errorf("dial rank %d: %v", r, err)
				return
			}
			comms[r] = c
		}(r)
	}
	dialWG.Wait()
	if t.Failed() {
		t.FailNow()
	}

	gaps := make([]float64, k)
	var wg sync.WaitGroup
	for r := 0; r < k; r++ {
		wg.Add(1)
		go func(rank int) {
			defer wg.Done()
			view := tpascd.PartitionView(p, tpascd.Primal, parts[rank])
			local := tpascd.NewSequentialLocal(view, uint64(rank))
			w, err := tpascd.NewWorker(comms[rank], local, view, cfg)
			if err != nil {
				t.Errorf("rank %d: %v", rank, err)
				return
			}
			for e := 0; e < 30; e++ {
				if _, err := w.RunEpoch(); err != nil {
					t.Errorf("rank %d epoch %d: %v", rank, e, err)
					return
				}
			}
			g, err := w.Gap()
			if err != nil {
				t.Errorf("rank %d gap: %v", rank, err)
				return
			}
			gaps[rank] = g
		}(r)
	}
	wg.Wait()
	for r := 0; r < k; r++ {
		defer comms[r].Close()
	}
	if t.Failed() {
		t.FailNow()
	}
	for r := 1; r < k; r++ {
		if gaps[r] != gaps[0] {
			t.Fatalf("ranks disagree on the gap: %v vs %v", gaps[r], gaps[0])
		}
	}
	if gaps[0] > 1e-2 {
		t.Fatalf("TCP distributed training made little progress: gap %v", gaps[0])
	}
}

func TestLibSVMRoundTripThroughFacade(t *testing.T) {
	a, y, err := tpascd.GenerateWebspam(tpascd.WebspamConfig{
		N: 50, M: 30, AvgNNZPerRow: 5, Skew: 1, NoiseRate: 0, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tpascd.WriteLibSVM(&buf, a, y); err != nil {
		t.Fatal(err)
	}
	p, err := tpascd.LoadLibSVM(strings.NewReader(buf.String()), a.NumCols, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if p.N != 50 || p.M != 30 {
		t.Fatalf("round-tripped problem is %dx%d", p.N, p.M)
	}
}

func TestRunFigureSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("figure smoke test skipped in -short mode")
	}
	figs, err := tpascd.RunFigure("4", tpascd.QuickExperimentScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(figs) != 2 {
		t.Fatalf("figure 4 panels = %d", len(figs))
	}
	var buf bytes.Buffer
	if err := figs[0].WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty CSV")
	}
}

func TestFigureIDs(t *testing.T) {
	ids := tpascd.FigureIDs()
	if len(ids) != 9 {
		t.Fatalf("expected 9 reproducible figures, got %v", ids)
	}
}
