package tpascd_test

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"tpascd"
)

// buildDistworker compiles cmd/distworker into a temp dir and returns the
// binary path.
func buildDistworker(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "distworker")
	build := exec.Command("go", "build", "-o", bin, "./cmd/distworker")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}
	return bin
}

// runDistCluster launches one distworker process per rank (master on a
// fresh loopback port, workers dialing it) and returns each rank's full
// stdout. extra, when non-nil, appends per-rank flags.
func runDistCluster(t *testing.T, bin string, size int, common []string, extra func(rank int) []string) []string {
	t.Helper()
	outs := make([]string, size)
	margs := append([]string{"-rank", "0", "-listen", "127.0.0.1:0"}, common...)
	if extra != nil {
		margs = append(margs, extra(0)...)
	}
	master := exec.Command(bin, margs...)
	stdout, err := master.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	var masterErr bytes.Buffer
	master.Stderr = &masterErr
	if err := master.Start(); err != nil {
		t.Fatal(err)
	}

	// First line announces the bound address.
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		master.Wait()
		t.Fatalf("master produced no output (stderr: %s)", masterErr.String())
	}
	fields := strings.Fields(sc.Text())
	if len(fields) != 2 || fields[0] != "LISTENING" {
		t.Fatalf("unexpected master banner %q", sc.Text())
	}
	addr := fields[1]

	var wg sync.WaitGroup
	for r := 1; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			wargs := append([]string{"-rank", fmt.Sprint(r), "-addr", addr}, common...)
			if extra != nil {
				wargs = append(wargs, extra(r)...)
			}
			w := exec.Command(bin, wargs...)
			out, err := w.CombinedOutput()
			if err != nil {
				t.Errorf("rank %d: %v\n%s", r, err, out)
				return
			}
			outs[r] = strings.TrimSpace(string(out))
		}(r)
	}

	var rest []string
	for sc.Scan() {
		rest = append(rest, sc.Text())
	}
	wg.Wait()
	if err := master.Wait(); err != nil {
		t.Fatalf("master exited: %v (stderr: %s)", err, masterErr.String())
	}
	if t.Failed() {
		t.FailNow()
	}
	outs[0] = strings.Join(rest, "\n")
	return outs
}

// resultGap extracts the gap= value from a rank's RESULT line.
func resultGap(t *testing.T, out string) float64 {
	t.Helper()
	for _, f := range strings.Fields(out) {
		if strings.HasPrefix(f, "gap=") {
			g, err := strconv.ParseFloat(strings.TrimPrefix(f, "gap="), 64)
			if err != nil {
				t.Fatalf("bad gap in %q: %v", out, err)
			}
			return g
		}
	}
	t.Fatalf("no gap in output %q", out)
	return 0
}

// TestMultiProcessCluster builds cmd/distworker and runs a real 3-process
// training cluster over TCP on loopback — the paper's deployment shape
// (one OS process per worker) end to end. All ranks must agree on the
// collective duality gap.
func TestMultiProcessCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test skipped in -short mode")
	}
	bin := buildDistworker(t)
	const size = 3
	common := []string{"-size", fmt.Sprint(size), "-epochs", "15",
		"-n", "1024", "-m", "512", "-nnz", "12", "-seed", "7"}
	outs := runDistCluster(t, bin, size, common, nil)

	g0 := resultGap(t, outs[0])
	for r := 1; r < size; r++ {
		if gr := resultGap(t, outs[r]); gr != g0 {
			t.Fatalf("rank %d gap %v != master %v (lines: %q vs %q)", r, gr, g0, outs[r], outs[0])
		}
	}
}

// TestMultiProcessCheckpointResume interrupts a real TCP cluster halfway
// through training, then restarts every process with -resume and checks
// the continued run reaches the same duality gap as an uninterrupted one.
// The RESUMED banner distinguishes a genuine resume from a silent
// from-scratch retrain (which, with shared seeds, would also match).
func TestMultiProcessCheckpointResume(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test skipped in -short mode")
	}
	bin := buildDistworker(t)
	dir := t.TempDir()
	const size = 3
	common := []string{"-size", fmt.Sprint(size),
		"-n", "1024", "-m", "512", "-nnz", "12", "-seed", "7", "-adaptive=false"}
	ckpt := func(r int) []string {
		return []string{"-checkpoint", filepath.Join(dir, fmt.Sprintf("r%d.ckpt", r))}
	}

	full := runDistCluster(t, bin, size, append([]string{"-epochs", "12"}, common...), nil)
	runDistCluster(t, bin, size, append([]string{"-epochs", "6"}, common...), ckpt)
	resumed := runDistCluster(t, bin, size, append([]string{"-epochs", "12"}, common...),
		func(r int) []string { return append(ckpt(r), "-resume") })

	for r := 0; r < size; r++ {
		want := fmt.Sprintf("RESUMED rank=%d epoch=6", r)
		if !strings.Contains(resumed[r], want) {
			t.Fatalf("rank %d output %q missing %q", r, resumed[r], want)
		}
	}
	gFull := resultGap(t, full[0])
	gRes := resultGap(t, resumed[0])
	if diff := math.Abs(gFull - gRes); diff > 1e-3*math.Abs(gFull)+1e-12 {
		t.Fatalf("resumed gap %v differs from uninterrupted %v by %v", gRes, gFull, diff)
	}
}

// scrapeMetrics fetches addr's Prometheus exposition and parses every
// sample line into name (labels included) → value.
func scrapeMetrics(addr string) (map[string]float64, error) {
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	m := make(map[string]float64)
	for _, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return nil, fmt.Errorf("unparseable sample %q", line)
		}
		v, err := strconv.ParseFloat(line[sp+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("unparseable value in %q: %v", line, err)
		}
		m[line[:sp]] = v
	}
	return m, nil
}

// metricsBanner reads a "METRICS addr" line from sc.
func metricsBanner(t *testing.T, sc *bufio.Scanner, who string) string {
	t.Helper()
	if !sc.Scan() {
		t.Fatalf("%s: no METRICS banner", who)
	}
	fields := strings.Fields(sc.Text())
	if len(fields) != 2 || fields[0] != "METRICS" {
		t.Fatalf("%s: unexpected banner %q", who, sc.Text())
	}
	return fields[1]
}

// TestMultiProcessMetricsEndpoint runs a chaos-injected two-process
// cluster with -metrics-addr on both ranks and scrapes their Prometheus
// endpoints: the worker (started before the master listens, with delay
// faults plus a mid-run kill) must expose nonzero dial-retry,
// injected-fault, and peer-failure counters along with populated
// per-collective latency histograms; the master must expose the peer
// failure and collective errors the kill caused. -metrics-linger keeps
// both endpoints scrapeable after the processes have died.
func TestMultiProcessMetricsEndpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test skipped in -short mode")
	}
	bin := buildDistworker(t)

	// Reserve a port so the worker can start dialing (and accruing
	// retries) before the master listens.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	common := []string{"-size", "2", "-epochs", "50", "-n", "512", "-m", "256",
		"-nnz", "8", "-seed", "7", "-timeout", "5s",
		"-metrics-addr", "127.0.0.1:0", "-metrics-linger", "30s"}

	worker := exec.Command(bin, append([]string{"-rank", "1", "-addr", addr,
		"-chaos-delay", "1", "-chaos-max-delay", "2ms",
		"-chaos-kill-at", "14", "-chaos-seed", "3"}, common...)...)
	wout, err := worker.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	worker.Stderr = io.Discard
	if err := worker.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() { worker.Process.Kill(); worker.Wait() }()
	workerMetrics := metricsBanner(t, bufio.NewScanner(wout), "worker")

	// Let the worker fail a few dials before the master appears.
	time.Sleep(400 * time.Millisecond)

	master := exec.Command(bin, append([]string{"-rank", "0", "-listen", addr}, common...)...)
	mout, err := master.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	master.Stderr = io.Discard
	if err := master.Start(); err != nil {
		t.Fatal(err)
	}
	defer func() { master.Process.Kill(); master.Wait() }()
	msc := bufio.NewScanner(mout)
	if !msc.Scan() || !strings.HasPrefix(msc.Text(), "LISTENING ") {
		t.Fatalf("master banner %q", msc.Text())
	}
	masterMetrics := metricsBanner(t, msc, "master")

	// Poll each endpoint until the fault the chaos config guarantees has
	// been recorded (the linger window keeps the endpoints up long after
	// both ranks have died).
	waitFor := func(addr, name string, min float64) map[string]float64 {
		t.Helper()
		deadline := time.Now().Add(20 * time.Second)
		for {
			m, err := scrapeMetrics(addr)
			if err == nil && m[name] >= min {
				return m
			}
			if time.Now().After(deadline) {
				t.Fatalf("%s never reached %v on %s (last %v, err %v)", name, min, addr, m[name], err)
			}
			time.Sleep(50 * time.Millisecond)
		}
	}

	wm := waitFor(workerMetrics, `cluster_chaos_injected_total{fault="kill",rank="1"}`, 1)
	if wm[`cluster_dial_retries_total{rank="1"}`] < 1 {
		t.Errorf("worker dial retries %v, want >= 1", wm[`cluster_dial_retries_total{rank="1"}`])
	}
	if wm[`cluster_chaos_injected_total{fault="delay",rank="1"}`] < 1 {
		t.Errorf("worker delay injections %v, want >= 1", wm[`cluster_chaos_injected_total{fault="delay",rank="1"}`])
	}
	if wm[`cluster_peer_failures_total{rank="1"}`] < 1 {
		t.Errorf("worker peer failures %v, want >= 1", wm[`cluster_peer_failures_total{rank="1"}`])
	}
	if wm[`cluster_bytes_sent_total{rank="1"}`] <= 0 || wm[`cluster_bytes_recv_total{rank="1"}`] <= 0 {
		t.Errorf("worker bytes sent/recv %v/%v, want > 0",
			wm[`cluster_bytes_sent_total{rank="1"}`], wm[`cluster_bytes_recv_total{rank="1"}`])
	}
	if n := wm[`cluster_collective_latency_seconds_count{op="reduce",rank="1"}`]; n <= 0 {
		t.Errorf("worker reduce latency count %v, want > 0", n)
	}
	if s := wm[`cluster_collective_latency_seconds_sum{op="reduce",rank="1"}`]; s <= 0 {
		t.Errorf("worker reduce latency sum %v, want > 0 (chaos delays must land in the histogram)", s)
	}

	mm := waitFor(masterMetrics, `cluster_peer_failures_total{rank="0"}`, 1)
	if mm[`cluster_collective_errors_total{rank="0"}`] < 1 {
		t.Errorf("master collective errors %v, want >= 1", mm[`cluster_collective_errors_total{rank="0"}`])
	}
	if mm[`cluster_bytes_sent_total{rank="0"}`] <= 0 || mm[`cluster_bytes_recv_total{rank="0"}`] <= 0 {
		t.Errorf("master bytes sent/recv %v/%v, want > 0",
			mm[`cluster_bytes_sent_total{rank="0"}`], mm[`cluster_bytes_recv_total{rank="0"}`])
	}
	if n := mm[`cluster_collective_latency_seconds_count{op="broadcast",rank="0"}`]; n <= 0 {
		t.Errorf("master broadcast latency count %v, want > 0", n)
	}

	// The runtime collector samples into the same rank-labeled registry.
	if g := wm[`go_goroutines{rank="1"}`]; g < 1 {
		t.Errorf("worker go_goroutines %v, want >= 1", g)
	}

	// Both ranks must advertise the same run correlation ID through the
	// run_info info-metric — that is what makes their scrapes joinable.
	runLabel := func(m map[string]float64, who string) string {
		t.Helper()
		for k := range m {
			if !strings.HasPrefix(k, "run_info{") {
				continue
			}
			if i := strings.Index(k, `run="`); i >= 0 {
				rest := k[i+len(`run="`):]
				return rest[:strings.Index(rest, `"`)]
			}
		}
		t.Fatalf("%s: no run_info series in %v", who, m)
		return ""
	}
	wRun, mRun := runLabel(wm, "worker"), runLabel(mm, "master")
	if len(wRun) != 16 || wRun != mRun {
		t.Errorf("run_info mismatch: worker %q, master %q", wRun, mRun)
	}
}

// TestMultiProcessTraceReport runs a real 3-process chaos-delay cluster
// with -trace-jsonl on every rank, then feeds the per-rank span files
// through the actual obsreport binary: the merged report must cover all
// three ranks under one run ID, with a complete monotone round timeline
// and a nonzero communication share on every rank.
func TestMultiProcessTraceReport(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test skipped in -short mode")
	}
	bin := buildDistworker(t)
	dir := t.TempDir()
	const size, epochs = 3, 10
	common := []string{"-size", fmt.Sprint(size), "-epochs", fmt.Sprint(epochs),
		"-n", "1024", "-m", "512", "-nnz", "12", "-seed", "7",
		"-chaos-delay", "0.5", "-chaos-max-delay", "2ms"}
	tracePath := func(r int) string { return filepath.Join(dir, fmt.Sprintf("rank%d.jsonl", r)) }
	runDistCluster(t, bin, size, common, func(r int) []string {
		return []string{"-trace-jsonl", tracePath(r), "-chaos-seed", fmt.Sprint(11 + r)}
	})

	rbin := filepath.Join(t.TempDir(), "obsreport")
	if out, err := exec.Command("go", "build", "-o", rbin, "./cmd/obsreport").CombinedOutput(); err != nil {
		t.Fatalf("build obsreport: %v\n%s", err, out)
	}
	raw, err := exec.Command(rbin, "-json", tracePath(0), tracePath(1), tracePath(2)).Output()
	if err != nil {
		t.Fatalf("obsreport: %v", err)
	}
	var rep tpascd.RunReport
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("obsreport output: %v\n%s", err, raw)
	}

	// One run, all ranks. (Analyze itself rejects mixed run IDs, so a
	// successful report already proves the handshake propagated one ID.)
	if len(rep.Run) != 16 {
		t.Fatalf("run ID %q", rep.Run)
	}
	if len(rep.Ranks) != size {
		t.Fatalf("ranks %v", rep.Ranks)
	}

	// Complete, monotone round timeline: every epoch present in order and
	// reported by every rank.
	if len(rep.Rounds) != epochs {
		t.Fatalf("%d rounds, want %d", len(rep.Rounds), epochs)
	}
	prevEnd := 0.0
	for i, rd := range rep.Rounds {
		if rd.Epoch != i+1 {
			t.Fatalf("round %d has epoch %d", i, rd.Epoch)
		}
		if rd.Ranks != size {
			t.Fatalf("epoch %d reported by %d ranks", rd.Epoch, rd.Ranks)
		}
		if rd.EndS < prevEnd {
			t.Fatalf("epoch %d ends at %v before previous round's end %v", rd.Epoch, rd.EndS, prevEnd)
		}
		prevEnd = rd.EndS
	}

	// Collectives (with injected delays) must show up in every rank's
	// communication share, and the shares must account for all time.
	for _, rs := range rep.RankStats {
		if rs.CommShare <= 0 {
			t.Errorf("rank %d communication share %v, want > 0", rs.Rank, rs.CommShare)
		}
		if sum := rs.ComputeShare + rs.CommShare + rs.OtherShare; math.Abs(sum-1) > 1e-12 {
			t.Errorf("rank %d shares sum to %v", rs.Rank, sum)
		}
	}
}

// TestMultiProcessShardOutParity is the shard-native training
// acceptance test. A real 3-process TCP cluster trains the primal form
// over the contiguous partition with -shard-out, so each rank writes
// serving shard rank-of-3 directly — no process ever holds the full
// weight vector, and the plan fingerprint is computed cooperatively.
// Then:
//
//  1. every rank-written shard file is bitwise identical to the one
//     shardsplit cuts from the single-process reference checkpoint
//     (identical training replayed in-process with the same per-rank
//     seeds — both transports reduce in rank order, so the models agree
//     bit for bit),
//  2. shardsplit -merge over the rank-written shards reassembles that
//     reference checkpoint bitwise, and
//  3. a fleet serving the rank-written shards behind the fan-out
//     aggregator returns Float64bits-identical margins to an unsharded
//     server loading the reference checkpoint, over a fixed corpus,
//     with zero failed requests.
func TestMultiProcessShardOutParity(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test skipped in -short mode")
	}
	bin := buildDistworker(t)
	dir := t.TempDir()
	shardDir := filepath.Join(dir, "shards")
	const (
		size   = 3
		epochs = 10
		seed   = 7
		nRows  = 1024
		dim    = 517 // 517 % 3 != 0: uneven shard sizes (172/172/173)
		nnz    = 12
		lambda = 0.001
	)
	common := []string{"-size", fmt.Sprint(size), "-epochs", fmt.Sprint(epochs),
		"-form", "primal", "-partition", "contiguous", "-adaptive=false",
		"-n", fmt.Sprint(nRows), "-m", fmt.Sprint(dim), "-nnz", fmt.Sprint(nnz),
		"-lambda", fmt.Sprint(lambda), "-seed", fmt.Sprint(seed),
		"-shard-out", shardDir}
	outs := runDistCluster(t, bin, size, common, nil)
	for r := 0; r < size; r++ {
		if !strings.Contains(outs[r], fmt.Sprintf("SHARD rank=%d ", r)) {
			t.Fatalf("rank %d output missing SHARD line:\n%s", r, outs[r])
		}
	}
	if !strings.Contains(outs[0], "MANIFEST ") {
		t.Fatalf("rank 0 output missing MANIFEST line:\n%s", outs[0])
	}

	// Single-process reference: the same training replayed over in-process
	// collectives with distworker's exact per-rank configuration (seed +
	// rank, contiguous partition, averaging). This process MAY hold the
	// full vector — it is the checker, not the trainer under test.
	ref := referenceShardOutModel(t, size, epochs, seed, nRows, dim, nnz, lambda)
	if len(ref) != dim {
		t.Fatalf("reference model dim %d, want %d", len(ref), dim)
	}
	refPath := filepath.Join(dir, "model.ckpt")
	if err := tpascd.SaveCheckpointFile(refPath, tpascd.Checkpoint{
		Kind: tpascd.KindRidge, Dim: dim, Vectors: [][]float32{ref},
	}); err != nil {
		t.Fatal(err)
	}

	// (1) Rank-written shard files == shardsplit output, byte for byte.
	splitDir := filepath.Join(dir, "split")
	if err := os.MkdirAll(splitDir, 0o755); err != nil {
		t.Fatal(err)
	}
	splitMan, err := tpascd.SplitServingCheckpoint(refPath, splitDir, size)
	if err != nil {
		t.Fatal(err)
	}
	var rankFiles []string
	for i := 0; i < size; i++ {
		name := tpascd.ShardCheckpointFileName("model.ckpt", i, size)
		trained, err := os.ReadFile(filepath.Join(shardDir, name))
		if err != nil {
			t.Fatalf("rank-written shard %d: %v", i, err)
		}
		split, err := os.ReadFile(filepath.Join(splitDir, name))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(trained, split) {
			t.Fatalf("shard %d: rank-written file differs from shardsplit output (%d vs %d bytes)",
				i, len(trained), len(split))
		}
		rankFiles = append(rankFiles, filepath.Join(shardDir, name))
	}

	// The cooperatively computed manifest matches the one shardsplit
	// derives from the whole vector.
	man, err := tpascd.LoadShardManifest(filepath.Join(shardDir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	if man.Fingerprint != splitMan.Fingerprint || man.Kind != splitMan.Kind ||
		man.Dim != splitMan.Dim || man.Shards != splitMan.Shards {
		t.Fatalf("manifest plan %+v != shardsplit plan %+v", man.Plan, splitMan.Plan)
	}

	// (2) Merging the rank-written shards reassembles the reference
	// checkpoint bitwise.
	mergedPath := filepath.Join(dir, "merged.ckpt")
	if err := tpascd.MergeShardCheckpoints(mergedPath, rankFiles...); err != nil {
		t.Fatal(err)
	}
	mergedBytes, err := os.ReadFile(mergedPath)
	if err != nil {
		t.Fatal(err)
	}
	refBytes, err := os.ReadFile(refPath)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(mergedBytes, refBytes) {
		t.Fatalf("merged rank shards differ from the single-process checkpoint (%d vs %d bytes)",
			len(mergedBytes), len(refBytes))
	}

	// (3) Serving parity: fleet over the rank-written shards vs an
	// unsharded server on the single-process checkpoint.
	whole := startServingReplica(t, refPath)
	groups := make([][]string, size)
	for i, f := range rankFiles {
		groups[i] = []string{startServingReplica(t, f)}
	}
	agg, err := tpascd.NewShardAggregator(tpascd.ShardAggregatorConfig{
		Manifest: man,
		Groups:   groups,
		Route: tpascd.RouterConfig{
			Probe: tpascd.RouterProbeConfig{
				Interval:           10 * time.Millisecond,
				Timeout:            500 * time.Millisecond,
				FailThreshold:      2,
				ProbationSuccesses: 2,
				Backoff:            tpascd.BackoffPolicy{Initial: 5 * time.Millisecond, Max: 20 * time.Millisecond},
			},
			MaxAttempts: 3,
			Deadline:    2 * time.Second,
		},
		Deadline: 5 * time.Second,
		Obs:      tpascd.NewMetricsRegistry(),
		Seed:     seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(agg.Close)
	front := httptest.NewServer(agg.Handler())
	t.Cleanup(front.Close)

	// Wait for the aggregator's health probes to admit every group.
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st, _ := postPredict(t, front.URL, `{"indices":[0],"values":[1]}`); st == http.StatusOK {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("aggregator never turned healthy")
		}
		time.Sleep(5 * time.Millisecond)
	}

	for i, body := range predictCorpus(dim, 40) {
		refSt, refMargin := postPredict(t, "http://"+whole, body)
		gotSt, gotMargin := postPredict(t, front.URL, body)
		if refSt != http.StatusOK || gotSt != http.StatusOK {
			t.Fatalf("corpus %d: status unsharded=%d sharded=%d", i, refSt, gotSt)
		}
		if math.Float64bits(refMargin) != math.Float64bits(gotMargin) {
			t.Fatalf("corpus %d: sharded margin %v (bits %x) != unsharded %v (bits %x)",
				i, gotMargin, math.Float64bits(gotMargin), refMargin, math.Float64bits(refMargin))
		}
	}
}

// TestDistworkerShardOutFlagValidation: unsupported -shard-out combos
// must be rejected before the cluster assembles, with errors that name
// what IS supported — not surface as a hang or a garbage shard set.
func TestDistworkerShardOutFlagValidation(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test skipped in -short mode")
	}
	bin := buildDistworker(t)
	dir := t.TempDir()
	notADir := filepath.Join(dir, "file.ckpt")
	if err := os.WriteFile(notADir, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"dual form", []string{"-form", "dual", "-partition", "contiguous", "-shard-out", dir},
			"requires -form primal -partition contiguous"},
		{"random partition", []string{"-form", "primal", "-partition", "random", "-shard-out", dir},
			"requires -form primal -partition contiguous"},
		{"unknown partition", []string{"-partition", "striped"},
			"supported partitions are 'random', 'contiguous'"},
		{"shard-out onto a file", []string{"-form", "primal", "-partition", "contiguous", "-shard-out", notADir},
			"not a directory"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			args := append([]string{"-rank", "0", "-size", "3", "-listen", "127.0.0.1:0"}, tc.args...)
			out, err := exec.Command(bin, args...).CombinedOutput()
			if err == nil {
				t.Fatalf("accepted %v:\n%s", tc.args, out)
			}
			if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
				t.Fatalf("exit: %v, want code 1", err)
			}
			if !strings.Contains(string(out), tc.want) {
				t.Fatalf("error %q does not explain what is supported (want %q)", out, tc.want)
			}
		})
	}
}

// referenceShardOutModel replays distworker's -shard-out training
// in-process: K workers over in-proc collectives, contiguous partition,
// primal form, averaging aggregation, and distworker's per-rank solver
// seeds (seed + rank). Both transports reduce contributions in rank
// order, so the resulting models are bitwise identical to the TCP run's.
func referenceShardOutModel(t *testing.T, size, epochs int, seed uint64, nRows, dim, nnz int, lambda float64) []float32 {
	t.Helper()
	a, y, err := tpascd.GenerateWebspam(tpascd.WebspamConfig{
		N: nRows, M: dim, AvgNNZPerRow: nnz, Skew: 1, NoiseRate: 0.05, Seed: seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	p, err := tpascd.NewProblem(a, y, lambda)
	if err != nil {
		t.Fatal(err)
	}
	solverName, err := tpascd.CanonicalDriver("scd")
	if err != nil {
		t.Fatal(err)
	}
	parts := tpascd.PartitionContiguous(dim, size)
	comms, err := tpascd.InProcComms(size)
	if err != nil {
		t.Fatal(err)
	}
	cfg := tpascd.ClusterConfig{Aggregation: tpascd.Averaging, Link: tpascd.Link10GbE}
	workers := make([]*tpascd.Worker, size)
	for r := 0; r < size; r++ {
		view := tpascd.PartitionView(p, tpascd.Primal, parts[r])
		local, err := tpascd.NewLocalSolver(view, tpascd.DriverSpec{
			Name: solverName, Threads: 1, Seed: seed + uint64(r),
		})
		if err != nil {
			t.Fatal(err)
		}
		if workers[r], err = tpascd.NewWorker(comms[r], local, view, cfg); err != nil {
			t.Fatal(err)
		}
	}
	models := make([][]float32, size)
	errs := make([]error, size)
	var wg sync.WaitGroup
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for e := 0; e < epochs; e++ {
				if _, err := workers[r].RunEpoch(); err != nil {
					errs[r] = err
					return
				}
			}
			models[r], _ = workers[r].Snapshot()
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("reference rank %d: %v", r, err)
		}
	}
	var full []float32
	for _, m := range models {
		full = append(full, m...)
	}
	return full
}

// startServingReplica serves one checkpoint file (whole model or shard)
// over HTTP on loopback and returns its address.
func startServingReplica(t *testing.T, ckptPath string) string {
	t.Helper()
	reg := tpascd.NewModelRegistry()
	if _, err := reg.LoadFile(ckptPath); err != nil {
		t.Fatal(err)
	}
	srv := tpascd.NewPredictionServer(reg, tpascd.ServerConfig{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	hsrv := &http.Server{Handler: srv.Handler()}
	go hsrv.Serve(ln)
	t.Cleanup(func() { hsrv.Close(); srv.Close() })
	return ln.Addr().String()
}

// predictCorpus builds a fixed set of single-example request bodies
// spanning the global coordinate space (deterministic LCG, sorted
// indices).
func predictCorpus(dim, n int) []string {
	state := uint64(0x9e3779b97f4a7c15)
	next := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11) / float64(1<<53)
	}
	bodies := make([]string, n)
	for i := range bodies {
		nnz := 1 + int(next()*20)
		seen := map[int]bool{}
		var idx []int
		for len(idx) < nnz {
			j := int(next() * float64(dim))
			if j >= dim || seen[j] {
				continue
			}
			seen[j] = true
			idx = append(idx, j)
		}
		sort.Ints(idx)
		is := make([]string, len(idx))
		vs := make([]string, len(idx))
		for k, j := range idx {
			is[k] = fmt.Sprint(j)
			vs[k] = fmt.Sprintf("%.6g", next()*4-2)
		}
		bodies[i] = fmt.Sprintf(`{"indices":[%s],"values":[%s]}`,
			strings.Join(is, ","), strings.Join(vs, ","))
	}
	return bodies
}

// postPredict posts one body to a prediction endpoint and returns the
// status and the (single) returned margin.
func postPredict(t *testing.T, base, body string) (status int, margin float64) {
	t.Helper()
	resp, err := http.Post(base+"/predict", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST /predict: %v", err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		Predictions []struct {
			Margin float64 `json:"margin"`
		} `json:"predictions"`
	}
	json.Unmarshal(raw, &parsed)
	if len(parsed.Predictions) == 1 {
		margin = parsed.Predictions[0].Margin
	}
	return resp.StatusCode, margin
}

// TestMultiProcessMasterJoinTimeout starts a master whose workers never
// arrive: it must exit non-zero with a rank-attributed join-timeout
// message instead of blocking forever.
func TestMultiProcessMasterJoinTimeout(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test skipped in -short mode")
	}
	bin := buildDistworker(t)
	master := exec.Command(bin, "-rank", "0", "-size", "3", "-listen", "127.0.0.1:0",
		"-join-timeout", "500ms", "-timeout", "1s", "-n", "256", "-m", "128", "-epochs", "2")
	out, err := master.CombinedOutput()
	if err == nil {
		t.Fatalf("master succeeded without workers:\n%s", out)
	}
	if ee, ok := err.(*exec.ExitError); !ok || ee.ExitCode() != 1 {
		t.Fatalf("master exit: %v, want exit code 1", err)
	}
	text := string(out)
	if !strings.Contains(text, "distworker: rank 0") {
		t.Fatalf("failure not rank-attributed:\n%s", text)
	}
	if !strings.Contains(text, "join") {
		t.Fatalf("failure does not mention the join deadline:\n%s", text)
	}
}
