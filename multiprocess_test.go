package tpascd_test

import (
	"bufio"
	"fmt"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// TestMultiProcessCluster builds cmd/distworker and runs a real 3-process
// training cluster over TCP on loopback — the paper's deployment shape
// (one OS process per worker) end to end. All ranks must agree on the
// collective duality gap.
func TestMultiProcessCluster(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-process test skipped in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "distworker")
	build := exec.Command("go", "build", "-o", bin, "./cmd/distworker")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("build: %v\n%s", err, out)
	}

	const (
		size   = 3
		epochs = "15"
	)
	common := []string{"-size", fmt.Sprint(size), "-epochs", epochs,
		"-n", "1024", "-m", "512", "-nnz", "12", "-seed", "7"}

	master := exec.Command(bin, append([]string{"-rank", "0", "-listen", "127.0.0.1:0"}, common...)...)
	stdout, err := master.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	master.Stderr = nil
	if err := master.Start(); err != nil {
		t.Fatal(err)
	}

	// First line announces the bound address.
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatal("master produced no output")
	}
	fields := strings.Fields(sc.Text())
	if len(fields) != 2 || fields[0] != "LISTENING" {
		t.Fatalf("unexpected master banner %q", sc.Text())
	}
	addr := fields[1]

	results := make([]string, size)
	var wg sync.WaitGroup
	for r := 1; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			w := exec.Command(bin, append([]string{"-rank", fmt.Sprint(r), "-addr", addr}, common...)...)
			out, err := w.CombinedOutput()
			if err != nil {
				t.Errorf("rank %d: %v\n%s", r, err, out)
				return
			}
			results[r] = strings.TrimSpace(string(out))
		}(r)
	}

	// Master's result line.
	if !sc.Scan() {
		t.Fatal("master produced no result line")
	}
	results[0] = sc.Text()
	wg.Wait()
	if err := master.Wait(); err != nil {
		t.Fatalf("master exited: %v", err)
	}
	if t.Failed() {
		t.FailNow()
	}

	// All ranks report the same collective gap.
	gap := func(line string) string {
		for _, f := range strings.Fields(line) {
			if strings.HasPrefix(f, "gap=") {
				return f
			}
		}
		return "?"
	}
	g0 := gap(results[0])
	if g0 == "?" {
		t.Fatalf("no gap in master result %q", results[0])
	}
	for r := 1; r < size; r++ {
		if gap(results[r]) != g0 {
			t.Fatalf("rank %d gap %s != master %s (lines: %q vs %q)", r, gap(results[r]), g0, results[r], results[0])
		}
	}
}
