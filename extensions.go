package tpascd

import (
	"io"

	"tpascd/internal/checkpoint"
	"tpascd/internal/elasticnet"
	"tpascd/internal/gpusim"
	"tpascd/internal/logistic"
	"tpascd/internal/metrics"
	"tpascd/internal/svm"
)

// Extensions: the paper's introduction motivates stochastic coordinate
// methods beyond ridge regression — "regression with elastic net
// regularization as well as support vector machines". Both are provided
// on the same substrates (sparse formats, shared-vector maintenance, the
// TPA-SCD execution strategy on the simulated GPU).

// ElasticNetProblem is ridge regression with an added L1 term in glmnet
// parameterization: F(β) = ‖Aβ−y‖²/(2N) + λ((1−α)/2‖β‖² + α‖β‖₁).
type ElasticNetProblem = elasticnet.Problem

// NewElasticNetProblem wraps a ridge problem with the mixing parameter
// alpha ∈ [0,1] (0 = ridge, 1 = lasso).
func NewElasticNetProblem(p *Problem, alpha float64) (*ElasticNetProblem, error) {
	return elasticnet.NewProblem(p, alpha)
}

// ElasticNetSolver is sequential coordinate descent with soft-thresholding
// updates (the glmnet algorithm, reference [4] of the paper).
type ElasticNetSolver = elasticnet.Sequential

// NewElasticNetSolver returns a sequential elastic-net solver.
func NewElasticNetSolver(p *ElasticNetProblem, seed uint64) *ElasticNetSolver {
	return elasticnet.NewSequential(p, seed)
}

// ElasticNetLoss returns the engine Loss of an elastic-net problem, for
// use with NewSolverFor — any registered driver can optimize it.
func ElasticNetLoss(p *ElasticNetProblem) Loss { return elasticnet.NewLoss(p) }

// ElasticNetGPU runs the same updates as a TPA-SCD kernel on a simulated
// device.
type ElasticNetGPU = elasticnet.GPU

// NewElasticNetGPU places the elastic-net problem on a fresh simulated
// device.
func NewElasticNetGPU(p *ElasticNetProblem, profile GPUProfile, blockSize int, seed uint64) (*ElasticNetGPU, error) {
	return elasticnet.NewGPU(p, gpusim.NewDevice(profile), blockSize, seed)
}

// SVMProblem is hinge-loss SVM classification solved by stochastic dual
// coordinate ascent (SDCA, reference [9] of the paper).
type SVMProblem = svm.Problem

// NewSVMProblem validates ±1 labels and wraps the training data.
func NewSVMProblem(a *CSR, y []float32, lambda float64) (*SVMProblem, error) {
	return svm.NewProblem(a, y, lambda)
}

// SVMSolver is sequential SDCA.
type SVMSolver = svm.Sequential

// NewSVMSolver returns a sequential SDCA solver.
func NewSVMSolver(p *SVMProblem, seed uint64) *SVMSolver {
	return svm.NewSequential(p, seed)
}

// SVMLoss returns the engine Loss of an SVM problem (dual form), for use
// with NewSolverFor — any registered driver can optimize it.
func SVMLoss(p *SVMProblem) Loss { return svm.NewLoss(p) }

// SVMGPU runs SDCA as a TPA-SCD kernel on a simulated device.
type SVMGPU = svm.GPU

// NewSVMGPU places the SVM problem on a fresh simulated device.
func NewSVMGPU(p *SVMProblem, profile GPUProfile, blockSize int, seed uint64) (*SVMGPU, error) {
	return svm.NewGPU(p, gpusim.NewDevice(profile), blockSize, seed)
}

// LogisticProblem is L2-regularized logistic regression solved by SDCA
// with exact (bisection-based) coordinate maximization — no step size, as
// for the other solvers in the family.
type LogisticProblem = logistic.Problem

// NewLogisticProblem validates ±1 labels and wraps the training data.
func NewLogisticProblem(a *CSR, y []float32, lambda float64) (*LogisticProblem, error) {
	return logistic.NewProblem(a, y, lambda)
}

// LogisticSolver is sequential SDCA for logistic regression.
type LogisticSolver = logistic.Solver

// NewLogisticSolver returns a sequential solver.
func NewLogisticSolver(p *LogisticProblem, seed uint64) *LogisticSolver {
	return logistic.NewSolver(p, seed)
}

// LogisticLoss returns the engine Loss of a logistic problem (dual form),
// for use with NewSolverFor — any registered driver can optimize it.
func LogisticLoss(p *LogisticProblem) Loss { return logistic.NewLoss(p) }

// Evaluation helpers (the paper's experiments use a 75/25 train/test
// split of this kind).

// SplitTrainTest partitions (a, y) by example uniformly at random.
func SplitTrainTest(a *CSR, y []float32, trainFrac float64, seed uint64) (trainA *CSR, trainY []float32, testA *CSR, testY []float32, err error) {
	return metrics.Split(a, y, trainFrac, seed)
}

// Predict computes scores ŷ = A·β.
func Predict(a *CSR, beta []float32) []float32 { return metrics.Scores(a, beta) }

// RMSE returns the root mean squared error of predictions against labels.
func RMSE(pred, y []float32) float64 { return metrics.RMSE(pred, y) }

// Accuracy returns the sign-agreement rate against ±1 labels.
func Accuracy(pred, y []float32) float64 { return metrics.Accuracy(pred, y) }

// AUC returns the area under the ROC curve of scores against ±1 labels.
func AUC(scores, y []float32) float64 { return metrics.AUC(scores, y) }

// Checkpointing: coordinate-descent state is fully captured by the model
// vector (the shared vector is recomputable from model and data), so
// checkpoints are small and endianness-independent, with a CRC-32
// integrity check.

// SaveModel writes model weights with a kind tag.
func SaveModel(w io.Writer, kind string, model []float32) error {
	return checkpoint.Save(w, checkpoint.Checkpoint{Kind: kind, Vectors: [][]float32{model}})
}

// LoadModel reads model weights, verifying integrity and (when non-empty)
// the kind tag.
func LoadModel(r io.Reader, kind string) ([]float32, error) {
	c, err := checkpoint.Load(r, kind)
	if err != nil {
		return nil, err
	}
	if len(c.Vectors) != 1 {
		return nil, io.ErrUnexpectedEOF
	}
	return c.Vectors[0], nil
}

// ElasticNetPathPoint is one solution along a regularization path.
type ElasticNetPathPoint = elasticnet.PathPoint

// ElasticNetPath computes a warm-started λ path from λ_max down to
// λ_max·lambdaMinRatio — the glmnet computation (paper reference [4]).
func ElasticNetPath(p *Problem, alpha float64, nLambda int, lambdaMinRatio, tol float64, maxEpochs int, seed uint64) ([]ElasticNetPathPoint, error) {
	return elasticnet.Path(p, alpha, nLambda, lambdaMinRatio, tol, maxEpochs, seed)
}

// SVMDistWorker is one rank of distributed SVM training (the original
// CoCoA problem, paper reference [7]), over any Comm transport, with
// averaging or box-feasible adaptive aggregation.
type SVMDistWorker = svm.DistWorker

// NewSVMDistWorker builds one rank over its partition of the examples.
func NewSVMDistWorker(comm Comm, localA *CSR, localY []float32, lambda float64, nGlobal int, adaptive bool, seed uint64) (*SVMDistWorker, error) {
	return svm.NewDistWorker(comm, localA, localY, lambda, nGlobal, adaptive, seed)
}
