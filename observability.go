package tpascd

import (
	"io"
	"net/http"

	"tpascd/internal/cluster"
	"tpascd/internal/engine"
	"tpascd/internal/obs"
)

// MetricsRegistry is a named collection of counters, gauges, and
// histograms with Prometheus text exposition. All handles are safe for
// concurrent use; a nil registry hands out nil handles whose methods
// no-op, so instrumentation can be threaded unconditionally.
type MetricsRegistry = obs.Registry

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// MetricsHandler serves the registry's metrics in Prometheus text
// exposition format. A nil registry serves an empty (valid) exposition.
func MetricsHandler(reg *MetricsRegistry) http.Handler { return reg.Handler() }

// Tracer emits structured spans into a sink. A nil tracer is a valid
// disabled tracer: Emit is a no-op and Enabled reports false.
type Tracer = obs.Tracer

// TraceEvent is one recorded span: a name, timestamp, duration, and
// numeric fields.
type TraceEvent = obs.Event

// TraceField is one numeric key/value attached to a span.
type TraceField = obs.Field

// TraceSink receives completed spans from a Tracer.
type TraceSink = obs.Sink

// RingSink retains the most recent spans in a fixed-size ring.
type RingSink = obs.RingSink

// JSONLSink writes one JSON object per span to an io.Writer.
type JSONLSink = obs.JSONLSink

// NewTracer returns a tracer emitting into sink; a nil sink yields a
// disabled tracer.
func NewTracer(sink TraceSink) *Tracer { return obs.NewTracer(sink) }

// NewRingSink returns a sink retaining the last capacity spans.
func NewRingSink(capacity int) *RingSink { return obs.NewRingSink(capacity) }

// NewJSONLSink returns a sink streaming spans as JSON lines to w.
// Call Flush before closing the underlying writer.
func NewJSONLSink(w io.Writer) *JSONLSink { return obs.NewJSONLSink(w) }

// TraceF constructs one span field.
func TraceF(key string, value float64) TraceField { return obs.F(key, value) }

// EpochSpanHook returns an epoch hook emitting one named span per
// training epoch (gap, work counters, simulated seconds) into the
// tracer. A nil tracer yields a no-op hook.
func EpochSpanHook(t *Tracer, name string) EpochHook { return engine.SpanHook(t, name) }

// InstrumentComm wraps a communicator so every collective records its
// latency and failures into reg (cluster_collective_latency_seconds,
// cluster_collective_errors_total). Wrap outermost — e.g. around
// WrapChaos — so injected faults land in the histograms. A nil registry
// returns c unwrapped.
func InstrumentComm(c Comm, reg *MetricsRegistry) Comm { return cluster.Instrument(c, reg) }

// LatencyBuckets returns the shared latency histogram bounds (seconds)
// used across the serving, cluster, and load-generator layers.
func LatencyBuckets() []float64 { return obs.LatencyBuckets() }
