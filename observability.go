package tpascd

import (
	"io"
	"net/http"
	"net/http/pprof"
	"time"

	"tpascd/internal/cluster"
	"tpascd/internal/engine"
	"tpascd/internal/obs"
	"tpascd/internal/obs/report"
	obsruntime "tpascd/internal/obs/runtime"
)

// MetricsRegistry is a named collection of counters, gauges, and
// histograms with Prometheus text exposition. All handles are safe for
// concurrent use; a nil registry hands out nil handles whose methods
// no-op, so instrumentation can be threaded unconditionally.
type MetricsRegistry = obs.Registry

// NewMetricsRegistry returns an empty metrics registry.
func NewMetricsRegistry() *MetricsRegistry { return obs.NewRegistry() }

// MetricsHandler serves the registry's metrics in Prometheus text
// exposition format. A nil registry serves an empty (valid) exposition.
func MetricsHandler(reg *MetricsRegistry) http.Handler { return reg.Handler() }

// Tracer emits structured spans into a sink. A nil tracer is a valid
// disabled tracer: Emit is a no-op and Enabled reports false.
type Tracer = obs.Tracer

// TraceEvent is one recorded span: a name, timestamp, duration, and
// numeric fields.
type TraceEvent = obs.Event

// TraceField is one numeric key/value attached to a span.
type TraceField = obs.Field

// TraceAttr is one string key/value attached to a span — how serving
// spans carry identities (trace ID, replica host, attempt kind) that
// have no numeric encoding.
type TraceAttr = obs.Attr

// TraceSink receives completed spans from a Tracer.
type TraceSink = obs.Sink

// RingSink retains the most recent spans in a fixed-size ring.
type RingSink = obs.RingSink

// JSONLSink writes one JSON object per span to an io.Writer.
type JSONLSink = obs.JSONLSink

// NewTracer returns a tracer emitting into sink; a nil sink yields a
// disabled tracer.
func NewTracer(sink TraceSink) *Tracer { return obs.NewTracer(sink) }

// NewRingSink returns a sink retaining the last capacity spans.
func NewRingSink(capacity int) *RingSink { return obs.NewRingSink(capacity) }

// NewJSONLSink returns a sink streaming spans as JSON lines to w.
// Call Flush before closing the underlying writer.
func NewJSONLSink(w io.Writer) *JSONLSink { return obs.NewJSONLSink(w) }

// TraceF constructs one span field.
func TraceF(key string, value float64) TraceField { return obs.F(key, value) }

// TraceA constructs one span attribute.
func TraceA(key, value string) TraceAttr { return obs.A(key, value) }

// EpochSpanHook returns an epoch hook emitting one named span per
// training epoch (gap, work counters, simulated seconds) into the
// tracer. A nil tracer yields a no-op hook.
func EpochSpanHook(t *Tracer, name string) EpochHook { return engine.SpanHook(t, name) }

// InstrumentComm wraps a communicator so every collective records its
// latency and failures into reg (cluster_collective_latency_seconds,
// cluster_collective_errors_total). Wrap outermost — e.g. around
// WrapChaos — so injected faults land in the histograms. A nil registry
// returns c unwrapped.
func InstrumentComm(c Comm, reg *MetricsRegistry) Comm { return cluster.Instrument(c, reg) }

// LatencyBuckets returns the shared latency histogram bounds (seconds)
// used across the serving, cluster, and load-generator layers.
func LatencyBuckets() []float64 { return obs.LatencyBuckets() }

// TraceTagSink stamps every event with a run correlation ID and a rank
// before forwarding it, which is what makes per-rank JSONL span files
// joinable offline (see AnalyzeRun).
type TraceTagSink = obs.TagSink

// NewRunID generates a random nonzero run correlation ID. The cluster
// master calls this implicitly; standalone trainers wanting correlated
// traces call it themselves.
func NewRunID() uint64 { return obs.NewRunID() }

// FormatRunID renders a run ID in its canonical 16-hex-digit form.
func FormatRunID(id uint64) string { return obs.FormatRunID(id) }

// TraceHeader is the HTTP header that carries a request's trace ID
// across the serving fleet (loadgen → predrouter → predserve).
const TraceHeader = obs.TraceHeader

// NewTraceID generates a random nonzero request trace ID. The
// predrouter mints these for sampled requests; load generators wanting
// end-to-end traces mint their own and send them in TraceHeader.
func NewTraceID() uint64 { return obs.NewTraceID() }

// FormatTraceID renders a trace ID in its canonical 16-hex-digit form.
func FormatTraceID(id uint64) string { return obs.FormatTraceID(id) }

// ParseTraceJSONL reads back events written by a JSONLSink (one JSON
// object per line, blank lines ignored).
func ParseTraceJSONL(r io.Reader) ([]TraceEvent, error) { return obs.ParseJSONL(r) }

// RuntimeCollector periodically samples Go runtime statistics (heap, GC
// pauses, goroutines, scheduler-latency proxy) into a metrics registry.
type RuntimeCollector = obsruntime.Collector

// StartRuntimeMetrics launches a runtime collector recording into reg
// every interval (a sensible default when zero). Returns nil — safe to
// Stop — when reg is nil.
func StartRuntimeMetrics(reg *MetricsRegistry, interval time.Duration) *RuntimeCollector {
	return obsruntime.Start(reg, interval)
}

// RunReport is the merged offline analysis of one distributed run's span
// files: round timeline, per-rank compute/communication breakdown, gap
// and γ trajectories, straggler statistics.
type RunReport = report.Report

// AnalyzeRun merges the (parsed) events of one run into a RunReport.
func AnalyzeRun(events []TraceEvent) (*RunReport, error) { return report.Analyze(events) }

// WriteRunReportJSON renders a RunReport as deterministic indented JSON.
func WriteRunReportJSON(w io.Writer, r *RunReport) error { return report.WriteJSON(w, r) }

// WriteRunReportTable renders a RunReport as a human-readable table.
func WriteRunReportTable(w io.Writer, r *RunReport) error { return report.WriteTable(w, r) }

// FleetReport is the merged offline analysis of the serving fleet's
// span files: attempt trees per traced request, critical-path latency
// decomposition, retry and hedge attribution per replica, shard-group
// fan-out statistics, and the slowest-N request timelines.
type FleetReport = report.FleetReport

// AnalyzeFleet merges the (parsed) serving span events into a
// FleetReport, keeping timelines for the slowest requests (default 5
// when slowest <= 0).
func AnalyzeFleet(events []TraceEvent, slowest int) (*FleetReport, error) {
	return report.AnalyzeFleet(events, slowest)
}

// WriteFleetReportJSON renders a FleetReport as deterministic indented
// JSON.
func WriteFleetReportJSON(w io.Writer, r *FleetReport) error { return report.WriteFleetJSON(w, r) }

// WriteFleetReportTable renders a FleetReport as a human-readable table.
func WriteFleetReportTable(w io.Writer, r *FleetReport) error { return report.WriteFleetTable(w, r) }

// RegisterPprof mounts the runtime/pprof diagnostic handlers on mux under
// /debug/pprof/, the standard paths `go tool pprof` expects. It exists so
// servers composing their own mux (rather than http.DefaultServeMux) can
// opt in behind a flag.
func RegisterPprof(mux *http.ServeMux) {
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
}
