// Command datagen emits synthetic webspam-like or criteo-like datasets in
// LIBSVM text format, for use with scdtrain or external tools.
//
// Usage:
//
//	datagen -kind webspam -n 16384 -m 8192 -nnz 40 -o webspam.svm
//	datagen -kind criteo -n 120000 -fields 26 -o criteo.svm
package main

import (
	"flag"
	"fmt"
	"os"

	"tpascd"
)

func main() {
	kind := flag.String("kind", "webspam", "dataset kind: 'webspam' or 'criteo'")
	n := flag.Int("n", 16384, "number of examples")
	m := flag.Int("m", 8192, "number of features (webspam)")
	nnz := flag.Int("nnz", 40, "average non-zeros per row (webspam)")
	fields := flag.Int("fields", 26, "categorical fields (criteo)")
	card := flag.Int("card", 20000, "cardinality base (criteo)")
	seed := flag.Uint64("seed", 1, "random seed")
	out := flag.String("o", "", "output path (default: stdout)")
	flag.Parse()

	var (
		a   *tpascd.CSR
		y   []float32
		err error
	)
	switch *kind {
	case "webspam":
		a, y, err = tpascd.GenerateWebspam(tpascd.WebspamConfig{
			N: *n, M: *m, AvgNNZPerRow: *nnz, Skew: 1, NoiseRate: 0.05, Seed: *seed,
		})
	case "criteo":
		a, y, err = tpascd.GenerateCriteo(tpascd.CriteoConfig{
			N: *n, Fields: *fields, CardinalityBase: *card, PositiveRate: 0.25, Seed: *seed,
		})
	default:
		err = fmt.Errorf("unknown kind %q", *kind)
	}
	if err != nil {
		fatal(err)
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := tpascd.WriteLibSVM(w, a, y); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "datagen: wrote %d examples × %d features (%d non-zeros)\n", a.NumRows, a.NumCols, a.NNZ())
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "datagen: %v\n", err)
	os.Exit(1)
}
