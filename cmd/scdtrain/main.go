// Command scdtrain trains a ridge-regression model on a LIBSVM-format
// dataset with any of the solvers from the paper and reports duality-gap
// convergence.
//
// Usage:
//
//	scdtrain -data train.svm -solver tpa-scd -gpu titanx -form dual -epochs 20
//	scdtrain -data train.svm -solver wild -threads 16 -lambda 0.001
//
// With -trace-jsonl FILE every epoch is additionally appended to FILE as
// one JSON object (span name, timestamp, numeric fields: gap or
// objective, work counters) — machine-readable convergence traces for
// offline analysis, for every objective.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"tpascd"
)

func main() {
	dataPath := flag.String("data", "", "path to a LIBSVM-format training file (required)")
	lambda := flag.Float64("lambda", 0.001, "L2 regularization constant λ")
	objective := flag.String("objective", "ridge", "objective: ridge | elasticnet | svm | logistic")
	alpha := flag.Float64("alpha", 0.5, "elastic-net mixing parameter (elasticnet only)")
	formFlag := flag.String("form", "primal", "formulation: 'primal' or 'dual' (ridge only)")
	solverFlag := flag.String("solver", "scd", "solver: "+tpascd.DriverList())
	threads := flag.Int("threads", 16, "threads for a-scd/wild/syscd")
	bucket := flag.Int("bucket", 0, "syscd bucket size in coordinates (0: one cache line of weights)")
	merge := flag.Int("merge", 0, "syscd buckets per thread between replica merges (0: auto)")
	gpuFlag := flag.String("gpu", "m4000", "device for tpa-scd: m4000 | titanx")
	blockSize := flag.Int("block", 64, "TPA-SCD threads per block (power of two)")
	epochs := flag.Int("epochs", 50, "maximum epochs")
	target := flag.Float64("gap", 0, "stop once the duality gap reaches this value (0: run all epochs)")
	seed := flag.Uint64("seed", 42, "random seed")
	modelOut := flag.String("model", "", "write the final model weights, one per line (optional)")
	savePath := flag.String("save", "", "write the final model as a serving checkpoint for cmd/predserve (optional)")
	traceOut := flag.String("trace-jsonl", "", "append one JSON span per epoch to this file (optional)")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus metrics (runtime stats, run_info) on this address (empty disables)")
	flag.Parse()

	if *dataPath == "" {
		fmt.Fprintln(os.Stderr, "scdtrain: -data is required")
		flag.Usage()
		os.Exit(2)
	}

	// A single-process training run is its own rank-0 "cluster": it mints
	// a run correlation ID so its spans and metrics correlate the same way
	// a distributed run's do.
	runHex := tpascd.FormatRunID(tpascd.NewRunID())
	if *metricsAddr != "" {
		reg := tpascd.NewMetricsRegistry().With("rank", "0")
		reg.With("run", runHex).Gauge("run_info").Set(1)
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fatal(fmt.Errorf("metrics listener: %w", err))
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", tpascd.MetricsHandler(reg))
		go http.Serve(ln, mux)
		collector := tpascd.StartRuntimeMetrics(reg, 0)
		defer collector.Stop()
		fmt.Printf("METRICS %s\n", ln.Addr())
	}

	f, err := os.Open(*dataPath)
	if err != nil {
		fatal(err)
	}
	p, err := tpascd.LoadLibSVM(f, 0, *lambda)
	f.Close()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("loaded %d examples × %d features (%d non-zeros), λ=%g\n", p.N, p.M, p.A.NNZ(), p.Lambda)

	tracer, flushTrace := newTracer(*traceOut, runHex)
	defer flushTrace()

	// One spec describes every driver; the engine registry resolves the
	// name (and rejects unknown ones listing what is registered), so this
	// command has no driver switch of its own. The simulated device is
	// attached unconditionally — only the tpa-scd driver reads it.
	profile := tpascd.M4000
	if *gpuFlag == "titanx" {
		profile = tpascd.TitanX
	} else if *gpuFlag != "m4000" {
		fatal(fmt.Errorf("unknown gpu %q", *gpuFlag))
	}
	spec := tpascd.DriverSpec{
		Name:       *solverFlag,
		Threads:    *threads,
		Seed:       *seed,
		BucketSize: *bucket,
		MergeEvery: *merge,
		BlockSize:  *blockSize,
		Device:     tpascd.NewDevice(profile),
	}

	switch *objective {
	case "ridge":
		// handled below
	case "elasticnet":
		trainElasticNet(p, *alpha, spec, *epochs, *modelOut, *savePath, tracer)
		return
	case "svm":
		trainSVM(p, spec, *epochs, *savePath, tracer)
		return
	case "logistic":
		trainLogistic(p, spec, *epochs, *savePath, tracer)
		return
	default:
		fatal(fmt.Errorf("unknown objective %q", *objective))
	}

	var form tpascd.Form
	switch *formFlag {
	case "primal":
		form = tpascd.Primal
	case "dual":
		form = tpascd.Dual
	default:
		fatal(fmt.Errorf("unknown form %q", *formFlag))
	}

	solver, err := tpascd.NewSolverSpec(p, form, spec)
	if err != nil {
		fatal(err)
	}
	defer closeSolver(solver)

	fmt.Printf("training with %s (%s form)\n", solver.Name(), form)
	start := time.Now()
	ran, gap := tpascd.Train(solver, *epochs, func(e int, g float64) bool {
		fmt.Printf("epoch %3d  duality gap %.6e\n", e, g)
		return *target <= 0 || g > *target
	}, tpascd.EpochSpanHook(tracer, "scdtrain.epoch"))
	fmt.Printf("done: %d epochs, final gap %.6e, wall clock %s\n", ran, gap, time.Since(start).Round(time.Millisecond))

	if *modelOut != "" {
		out, err := os.Create(*modelOut)
		if err != nil {
			fatal(err)
		}
		for _, w := range solver.Model() {
			fmt.Fprintf(out, "%g\n", w)
		}
		if err := out.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote model to %s\n", *modelOut)
	}
	if *savePath != "" {
		// Serving scores with primal weights: the primal-form model is
		// used as is; a dual iterate is mapped through the dual→primal
		// correspondence β(α) = Aᵀα-based closed form.
		weights := solver.Model()
		if form == tpascd.Dual {
			wbar := make([]float32, p.M)
			p.A.MulTVec(wbar, weights)
			weights = p.PrimalFromDual(wbar)
		}
		saveServing(*savePath, tpascd.KindRidge, weights)
	}
}

// closeSolver releases device memory for drivers that hold it (tpa-scd);
// CPU solvers have nothing to close.
func closeSolver(s tpascd.Solver) {
	if c, ok := s.(interface{ Close() }); ok {
		c.Close()
	}
}

// saveServing writes primal weights as a serving checkpoint, atomically
// so a live predserve watching the path never sees a partial file.
func saveServing(path, kind string, weights []float32) {
	err := tpascd.SaveCheckpointFile(path, tpascd.Checkpoint{
		Kind: kind, Dim: len(weights), Vectors: [][]float32{weights},
	})
	if err != nil {
		fatal(err)
	}
	fmt.Printf("wrote %s serving checkpoint to %s\n", kind, path)
}

func trainElasticNet(p *tpascd.Problem, alpha float64, spec tpascd.DriverSpec, epochs int, modelOut, savePath string, tracer *tpascd.Tracer) {
	en, err := tpascd.NewElasticNetProblem(p, alpha)
	if err != nil {
		fatal(err)
	}
	solver, err := tpascd.NewSolverFor(tpascd.ElasticNetLoss(en), spec)
	if err != nil {
		fatal(err)
	}
	defer closeSolver(solver)
	fmt.Printf("training elastic net (α=%g) with %s\n", alpha, solver.Name())
	for e := 1; e <= epochs; e++ {
		solver.RunEpoch()
		obj, viol := en.Objective(solver.Model()), solver.Gap()
		fmt.Printf("epoch %3d  objective %.6e  KKT violation %.3e\n", e, obj, viol)
		tracer.Emit("scdtrain.epoch", time.Now(), 0,
			tpascd.TraceF("epoch", float64(e)), tpascd.TraceF("objective", obj), tpascd.TraceF("kkt", viol))
	}
	beta := solver.Model()
	nnz := 0
	for _, b := range beta {
		if b != 0 {
			nnz++
		}
	}
	fmt.Printf("done: %d of %d weights non-zero\n", nnz, len(beta))
	if modelOut != "" {
		out, err := os.Create(modelOut)
		if err != nil {
			fatal(err)
		}
		for _, w := range beta {
			fmt.Fprintf(out, "%g\n", w)
		}
		if err := out.Close(); err != nil {
			fatal(err)
		}
	}
	if savePath != "" {
		saveServing(savePath, tpascd.KindElasticNet, beta)
	}
}

func trainSVM(p *tpascd.Problem, spec tpascd.DriverSpec, epochs int, savePath string, tracer *tpascd.Tracer) {
	sp, err := tpascd.NewSVMProblem(p.A, p.Y, p.Lambda)
	if err != nil {
		fatal(fmt.Errorf("svm needs ±1 labels: %w", err))
	}
	solver, err := tpascd.NewSolverFor(tpascd.SVMLoss(sp), spec)
	if err != nil {
		fatal(err)
	}
	defer closeSolver(solver)
	fmt.Printf("training SVM via SDCA with %s\n", solver.Name())
	for e := 1; e <= epochs; e++ {
		solver.RunEpoch()
		gap, acc := solver.Gap(), sp.AccuracyW(sp.SharedFromAlpha(solver.Model()))
		fmt.Printf("epoch %3d  duality gap %.6e  train accuracy %.2f%%\n", e, gap, 100*acc)
		tracer.Emit("scdtrain.epoch", time.Now(), 0,
			tpascd.TraceF("epoch", float64(e)), tpascd.TraceF("gap", gap), tpascd.TraceF("accuracy", acc))
	}
	if savePath != "" {
		// SDCA iterates in the dual; serving wants the induced primal
		// weight vector w(α) = Σ αᵢyᵢxᵢ/(λN).
		saveServing(savePath, tpascd.KindSVM, sp.SharedFromAlpha(solver.Model()))
	}
}

func trainLogistic(p *tpascd.Problem, spec tpascd.DriverSpec, epochs int, savePath string, tracer *tpascd.Tracer) {
	lp, err := tpascd.NewLogisticProblem(p.A, p.Y, p.Lambda)
	if err != nil {
		fatal(fmt.Errorf("logistic needs ±1 labels: %w", err))
	}
	solver, err := tpascd.NewSolverFor(tpascd.LogisticLoss(lp), spec)
	if err != nil {
		fatal(err)
	}
	defer closeSolver(solver)
	fmt.Printf("training logistic regression via SDCA with %s\n", solver.Name())
	for e := 1; e <= epochs; e++ {
		solver.RunEpoch()
		gap, acc := solver.Gap(), lp.AccuracyW(lp.SharedFromAlpha(solver.Model()))
		fmt.Printf("epoch %3d  duality gap %.6e  train accuracy %.2f%%\n", e, gap, 100*acc)
		tracer.Emit("scdtrain.epoch", time.Now(), 0,
			tpascd.TraceF("epoch", float64(e)), tpascd.TraceF("gap", gap), tpascd.TraceF("accuracy", acc))
	}
	if savePath != "" {
		saveServing(savePath, tpascd.KindLogistic, lp.SharedFromAlpha(solver.Model()))
	}
}

// newTracer opens path as a JSONL trace sink whose spans are stamped with
// the run ID and rank 0; an empty path yields a nil (disabled) tracer and
// a no-op flush, so callers emit unconditionally.
func newTracer(path, runHex string) (*tpascd.Tracer, func()) {
	if path == "" {
		return nil, func() {}
	}
	f, err := os.Create(path)
	if err != nil {
		fatal(err)
	}
	sink := tpascd.NewJSONLSink(f)
	return tpascd.NewTracer(tpascd.TraceTagSink{Run: runHex, Rank: 0, Next: sink}), func() {
		if err := sink.Flush(); err != nil {
			fatal(fmt.Errorf("trace: %w", err))
		}
		if err := f.Close(); err != nil {
			fatal(fmt.Errorf("trace: %w", err))
		}
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "scdtrain: %v\n", err)
	os.Exit(1)
}
