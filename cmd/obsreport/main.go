// Command obsreport merges the per-rank span JSONL files of one
// distributed run into a single report: round timeline, compute versus
// communication breakdown per rank, duality-gap and γ trajectories, and
// straggler statistics.
//
// Usage:
//
//	obsreport [-json] [-o report.out] rank0.jsonl rank1.jsonl ...
//
// The files are typically produced by distworker -trace-jsonl (one file
// per rank, all stamped with the run ID the master generated). The default
// output is a human-readable table; -json emits the machine-readable form.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"tpascd/internal/obs"
	"tpascd/internal/obs/report"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit the report as JSON instead of a table")
	outPath := flag.String("o", "", "write the report to this file (default stdout)")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: obsreport [-json] [-o out] spans.jsonl...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	var events []obs.Event
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		evs, err := obs.ParseJSONL(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		events = append(events, evs...)
	}

	rep, err := report.Analyze(events)
	if err != nil {
		fatal(err)
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}
	if *jsonOut {
		err = report.WriteJSON(out, rep)
	} else {
		err = report.WriteTable(out, rep)
	}
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "obsreport:", err)
	os.Exit(1)
}
