// Command distworker runs one rank of the distributed training algorithm
// as its own OS process, communicating over TCP — the same deployment
// shape as the paper's MPI cluster (one process per worker machine).
//
// Every rank deterministically regenerates the same synthetic dataset
// from the shared seed and takes its own partition, so no training data
// crosses the network — only shared-vector deltas and scalars do, exactly
// as in Algorithm 3/4.
//
// Start the master (rank 0) first; it prints the bound address workers
// must dial:
//
//	distworker -rank 0 -size 4 -listen 127.0.0.1:7777
//	distworker -rank 1 -size 4 -addr 127.0.0.1:7777
//	distworker -rank 2 -size 4 -addr 127.0.0.1:7777
//	distworker -rank 3 -size 4 -addr 127.0.0.1:7777
package main

import (
	"flag"
	"fmt"
	"os"

	"tpascd"
)

func main() {
	rank := flag.Int("rank", 0, "this worker's rank in [0, size)")
	size := flag.Int("size", 2, "total number of workers")
	listen := flag.String("listen", "127.0.0.1:0", "master only: address to listen on")
	addr := flag.String("addr", "", "workers: master address to dial")
	epochs := flag.Int("epochs", 30, "training epochs")
	formFlag := flag.String("form", "dual", "'primal' (partition features) or 'dual' (partition examples)")
	n := flag.Int("n", 8192, "dataset examples")
	m := flag.Int("m", 4096, "dataset features")
	nnz := flag.Int("nnz", 32, "average non-zeros per example")
	lambda := flag.Float64("lambda", 0.001, "regularization λ")
	seed := flag.Uint64("seed", 1, "shared dataset/partition seed (must agree across ranks)")
	adaptive := flag.Bool("adaptive", true, "use adaptive aggregation (Algorithm 4)")
	flag.Parse()

	if *rank < 0 || *rank >= *size {
		fatal(fmt.Errorf("rank %d outside [0,%d)", *rank, *size))
	}

	// Identical data on every rank, from the shared seed.
	a, y, err := tpascd.GenerateWebspam(tpascd.WebspamConfig{
		N: *n, M: *m, AvgNNZPerRow: *nnz, Skew: 1, NoiseRate: 0.05, Seed: *seed,
	})
	if err != nil {
		fatal(err)
	}
	p, err := tpascd.NewProblem(a, y, *lambda)
	if err != nil {
		fatal(err)
	}
	form := tpascd.Dual
	numCoords := p.N
	if *formFlag == "primal" {
		form = tpascd.Primal
		numCoords = p.M
	}
	parts := tpascd.PartitionRandom(numCoords, *size, *seed)

	var comm tpascd.Comm
	if *rank == 0 {
		master, bound, err := tpascd.ListenTCP(*listen, *size)
		if err != nil {
			fatal(err)
		}
		// Workers parse this line to learn where to dial.
		fmt.Printf("LISTENING %s\n", bound)
		comm = master
	} else {
		if *addr == "" {
			fatal(fmt.Errorf("workers need -addr"))
		}
		comm, err = tpascd.DialTCP(*addr, *rank, *size)
		if err != nil {
			fatal(err)
		}
	}
	defer comm.Close()

	agg := tpascd.Averaging
	if *adaptive {
		agg = tpascd.Adaptive
	}
	cfg := tpascd.ClusterConfig{Aggregation: agg, Link: tpascd.Link10GbE}
	view := tpascd.PartitionView(p, form, parts[*rank])
	local := tpascd.NewSequentialLocal(view, *seed+uint64(*rank))
	w, err := tpascd.NewWorker(comm, local, view, cfg)
	if err != nil {
		fatal(err)
	}

	for e := 1; e <= *epochs; e++ {
		if _, err := w.RunEpoch(); err != nil {
			fatal(fmt.Errorf("epoch %d: %w", e, err))
		}
	}
	gap, err := w.Gap()
	if err != nil {
		fatal(err)
	}
	// One machine-parseable result line per rank.
	fmt.Printf("RESULT rank=%d gap=%.6e gamma=%.4f\n", *rank, gap, w.Gamma())
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "distworker: %v\n", err)
	os.Exit(1)
}
