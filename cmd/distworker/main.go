// Command distworker runs one rank of the distributed training algorithm
// as its own OS process, communicating over TCP — the same deployment
// shape as the paper's MPI cluster (one process per worker machine).
//
// Every rank deterministically regenerates the same synthetic dataset
// from the shared seed and takes its own partition, so no training data
// crosses the network — only shared-vector deltas and scalars do, exactly
// as in Algorithm 3/4.
//
// Start the master (rank 0) first; it prints the bound address workers
// must dial. Thanks to dial retry with backoff, workers may equally be
// started first if the master's address is known in advance:
//
//	distworker -rank 0 -size 4 -listen 127.0.0.1:7777
//	distworker -rank 1 -size 4 -addr 127.0.0.1:7777
//	distworker -rank 2 -size 4 -addr 127.0.0.1:7777
//	distworker -rank 3 -size 4 -addr 127.0.0.1:7777
//
// Fault tolerance: -timeout bounds every collective, so a dead or stalled
// peer surfaces as a typed, rank-attributed error (and a non-zero exit)
// instead of a hang; -join-timeout bounds cluster assembly. With
// -checkpoint FILE each rank atomically persists its model and epoch
// every -checkpoint-every rounds (temp file + rename, so a crash mid-save
// never corrupts the previous checkpoint). After a failure, restart every
// rank with the same flags plus -resume: each rank reloads its model,
// the group agrees on the checkpointed epoch, rebuilds the shared vector
// collectively and continues training where it left off:
//
//	distworker -rank 0 -size 4 -listen 127.0.0.1:7777 -checkpoint r0.ckpt -resume
//	distworker -rank 1 -size 4 -addr 127.0.0.1:7777 -checkpoint r1.ckpt -resume
//	...
//
// Observability: -metrics-addr serves this rank's Prometheus metrics
// (bytes moved, dial retries, peer failures, per-collective latency
// histograms; plus injected-fault counters under chaos), every series
// labeled with this rank, plus sampled Go runtime stats and a
// run_info{rank,run} gauge carrying the cluster's shared run ID. The
// bound address is printed as "METRICS addr" — after the LISTENING line
// on rank 0. -metrics-linger keeps the endpoint scrapeable for a grace
// period after the rank exits, so the counters of a crashed chaos run
// can still be collected. -pprof additionally mounts the runtime
// profiling handlers under /debug/pprof/ on the same address. The
// -chaos-* flags inject deterministic faults (see ChaosConfig) for
// drills and tests.
//
// -trace-jsonl FILE streams this rank's training spans (dist.round,
// dist.gap) as JSON lines, each stamped with the run ID and rank. Point
// obsreport at the per-rank files of one run for a merged timeline and
// compute/communication breakdown.
//
// Shard-native output: with -form primal -partition contiguous, rank r
// of K owns exactly the coordinate range serving shard r-of-K covers,
// so -shard-out DIR publishes each rank's trained slice directly as a
// serving shard checkpoint — atomic save, MetaShard* identity, the plan
// fingerprint computed cooperatively over the cluster (no process ever
// holds the whole weight vector) — and rank 0 writes manifest.json
// after a barrier confirms every shard file is on disk. The directory
// is immediately servable by predserve -shard/-manifest and
// predrouter -shards, with no shardsplit step:
//
//	distworker -rank 0 -size 3 -listen 127.0.0.1:7777 \
//	  -form primal -partition contiguous -shard-out /srv/model
//	distworker -rank 1 -size 3 -addr 127.0.0.1:7777 \
//	  -form primal -partition contiguous -shard-out /srv/model
//	...
//	predrouter -shards /srv/model/manifest.json ...
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"tpascd"
	"tpascd/internal/checkpoint"
)

// curRank labels every fatal diagnostic so multi-process failures are
// attributable from the interleaved stderr of a whole cluster.
var curRank int

// lingerDur keeps the -metrics-addr endpoint scrapeable for a grace
// period after the rank finishes or dies, so a monitor (or test) can
// still collect the failure counters of a crashed run.
var lingerDur time.Duration

// traceFlush, when tracing is on, drains the span sink to disk. It is
// invoked on every exit path — including fatal ones, so the spans of a
// chaos-killed rank survive for post-mortem analysis.
var traceFlush func()

// exit flushes traces, lingers (if configured), then terminates with the
// given code.
func exit(code int) {
	if traceFlush != nil {
		traceFlush()
	}
	if lingerDur > 0 {
		time.Sleep(lingerDur)
	}
	os.Exit(code)
}

func main() {
	rank := flag.Int("rank", 0, "this worker's rank in [0, size)")
	size := flag.Int("size", 2, "total number of workers")
	listen := flag.String("listen", "127.0.0.1:0", "master only: address to listen on")
	addr := flag.String("addr", "", "workers only: master address to dial")
	epochs := flag.Int("epochs", 30, "training epochs")
	formFlag := flag.String("form", "dual", "'primal' (partition features) or 'dual' (partition examples)")
	n := flag.Int("n", 8192, "dataset examples")
	m := flag.Int("m", 4096, "dataset features")
	nnz := flag.Int("nnz", 32, "average non-zeros per example")
	lambda := flag.Float64("lambda", 0.001, "regularization λ")
	solverFlag := flag.String("solver", "scd", "local CPU solver: scd | a-scd | wild | syscd")
	partitionFlag := flag.String("partition", "random", "coordinate partition: random | contiguous")
	shardOut := flag.String("shard-out", "", "directory to publish this rank's trained slice as serving shard rank-of-size (requires -form primal -partition contiguous); rank 0 also writes manifest.json")
	threads := flag.Int("threads", 1, "threads for a-scd/wild/syscd locals")
	bucket := flag.Int("bucket", 0, "syscd bucket size in coordinates (0: one cache line of weights)")
	seed := flag.Uint64("seed", 1, "shared dataset/partition seed (must agree across ranks)")
	adaptive := flag.Bool("adaptive", true, "use adaptive aggregation (Algorithm 4)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-collective deadline; a dead peer surfaces within this budget (0 disables)")
	joinTimeout := flag.Duration("join-timeout", 60*time.Second, "total budget for cluster assembly, including dial retries (0 waits forever)")
	ckptPath := flag.String("checkpoint", "", "checkpoint file for this rank (atomic save every -checkpoint-every epochs)")
	ckptEvery := flag.Int("checkpoint-every", 5, "epochs between checkpoints")
	resume := flag.Bool("resume", false, "resume from -checkpoint instead of training from scratch (all ranks must resume together)")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus metrics for this rank on this address (empty disables)")
	metricsLinger := flag.Duration("metrics-linger", 0, "keep the metrics endpoint up this long after the rank finishes or fails")
	pprofOn := flag.Bool("pprof", false, "mount /debug/pprof/ handlers on the metrics address (requires -metrics-addr)")
	traceJSONL := flag.String("trace-jsonl", "", "stream this rank's training spans as JSON lines to this file")
	chaosDrop := flag.Float64("chaos-drop", 0, "chaos: probability a collective is dropped (peer appears dead)")
	chaosDelay := flag.Float64("chaos-delay", 0, "chaos: probability a collective is delayed")
	chaosMaxDelay := flag.Duration("chaos-max-delay", 10*time.Millisecond, "chaos: maximum injected delay")
	chaosKillAt := flag.Int("chaos-kill-at", 0, "chaos: kill this rank on its Nth collective (0 disables)")
	chaosSeed := flag.Uint64("chaos-seed", 0, "chaos: fault-injection seed (defaults to -seed plus rank)")
	flag.Parse()
	curRank = *rank
	lingerDur = *metricsLinger

	// Validate the flag combinations up front: wrong -listen/-addr pairings
	// used to surface only as a confusing mid-training hang or dial error.
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if *rank < 0 || *rank >= *size {
		fatal(fmt.Errorf("rank %d outside [0,%d)", *rank, *size))
	}
	if *rank == 0 && set["addr"] {
		fatal(fmt.Errorf("-addr is for workers; rank 0 listens (use -listen)"))
	}
	if *rank != 0 && set["listen"] {
		fatal(fmt.Errorf("-listen is for rank 0; workers dial the master (use -addr)"))
	}
	if *rank != 0 && *addr == "" {
		fatal(fmt.Errorf("workers need -addr"))
	}
	if *formFlag != "primal" && *formFlag != "dual" {
		fatal(fmt.Errorf("-form %q (want 'primal' or 'dual')", *formFlag))
	}
	if *partitionFlag != "random" && *partitionFlag != "contiguous" {
		fatal(fmt.Errorf("-partition %q: supported partitions are 'random', 'contiguous'", *partitionFlag))
	}
	if *shardOut != "" {
		// Shard-out publishes each rank's local model as serving shard
		// rank-of-size, which is only meaningful when that model IS a
		// contiguous slice of the serving weight vector: the primal form
		// (model = β over features; the dual form's serving weights live
		// in the shared vector, which every rank holds whole) under the
		// contiguous partition (a random partition's slice is not a shard
		// range). Reject everything else up front.
		if *formFlag != "primal" || *partitionFlag != "contiguous" {
			fatal(fmt.Errorf("-shard-out requires -form primal -partition contiguous (got -form %s -partition %s); no other combination maps a rank's model onto a serving shard range", *formFlag, *partitionFlag))
		}
		// Same atomic-save discipline as -checkpoint: shard files land via
		// temp+fsync+rename inside a directory. A path that exists as a
		// plain file cannot get those semantics.
		if fi, err := os.Stat(*shardOut); err == nil && !fi.IsDir() {
			fatal(fmt.Errorf("-shard-out %s exists and is not a directory (shard checkpoints are saved atomically into a directory)", *shardOut))
		}
	}
	// Resolve the solver through the engine registry now: a typo should
	// fail before the dataset is generated or the cluster assembles, and
	// the canonical name feeds the checkpoint kind below (aliases must not
	// fork a rank's resume identity).
	solverName, err := tpascd.CanonicalDriver(*solverFlag)
	if err != nil {
		fatal(err)
	}
	if *resume && *ckptPath == "" {
		fatal(fmt.Errorf("-resume requires -checkpoint"))
	}
	if *ckptEvery < 1 {
		fatal(fmt.Errorf("-checkpoint-every %d (want >= 1)", *ckptEvery))
	}
	if *chaosDrop < 0 || *chaosDrop > 1 || *chaosDelay < 0 || *chaosDelay > 1 {
		fatal(fmt.Errorf("chaos probabilities must be in [0,1]"))
	}
	if *pprofOn && *metricsAddr == "" {
		fatal(fmt.Errorf("-pprof requires -metrics-addr"))
	}

	// Observability: one registry per rank. Everything below threads it
	// unconditionally — a nil registry hands out no-op handles — so the
	// training path is identical whether or not metrics are exported.
	var reg *tpascd.MetricsRegistry
	metricsBound := ""
	if *metricsAddr != "" {
		// Every series this rank registers carries a rank label, so the
		// scrapes of a whole cluster land in one database without clashing.
		reg = tpascd.NewMetricsRegistry().With("rank", fmt.Sprint(*rank))
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fatal(fmt.Errorf("metrics listener: %w", err))
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", tpascd.MetricsHandler(reg))
		if *pprofOn {
			tpascd.RegisterPprof(mux)
		}
		go http.Serve(ln, mux)
		collector := tpascd.StartRuntimeMetrics(reg, 0)
		defer collector.Stop()
		metricsBound = ln.Addr().String()
		// Workers announce the endpoint immediately (it is live during
		// dial retries); rank 0 prints it after "LISTENING addr" so that
		// line stays first on its stdout, which the harness parses.
		if *rank != 0 {
			fmt.Printf("METRICS %s\n", metricsBound)
		}
	}

	// Identical data on every rank, from the shared seed.
	a, y, err := tpascd.GenerateWebspam(tpascd.WebspamConfig{
		N: *n, M: *m, AvgNNZPerRow: *nnz, Skew: 1, NoiseRate: 0.05, Seed: *seed,
	})
	if err != nil {
		fatal(err)
	}
	p, err := tpascd.NewProblem(a, y, *lambda)
	if err != nil {
		fatal(err)
	}
	form := tpascd.Dual
	numCoords := p.N
	if *formFlag == "primal" {
		form = tpascd.Primal
		numCoords = p.M
	}
	parts := tpascd.PartitionRandom(numCoords, *size, *seed)
	if *partitionFlag == "contiguous" {
		parts = tpascd.PartitionContiguous(numCoords, *size)
	}

	commCfg := tpascd.DefaultCommConfig()
	commCfg.CollectiveTimeout = *timeout
	commCfg.JoinTimeout = *joinTimeout
	commCfg.Seed = *seed
	commCfg.Obs = reg

	var comm tpascd.Comm
	if *rank == 0 {
		master, bound, err := tpascd.ListenTCPConfig(*listen, *size, commCfg)
		if err != nil {
			fatal(err)
		}
		// Workers parse this line to learn where to dial.
		fmt.Printf("LISTENING %s\n", bound)
		if metricsBound != "" {
			fmt.Printf("METRICS %s\n", metricsBound)
		}
		comm = master
	} else {
		comm, err = tpascd.DialTCPConfig(*addr, *rank, *size, commCfg)
		if err != nil {
			fatal(err)
		}
	}
	defer comm.Close()

	// The master generated the run correlation ID and the handshake gave
	// it to every worker; stamp it onto this rank's metrics (the standard
	// info-metric join: run_info{rank,run} = 1) and every emitted span.
	runHex := tpascd.FormatRunID(comm.Run())
	reg.With("run", runHex).Gauge("run_info").Set(1)

	var tracer *tpascd.Tracer
	if *traceJSONL != "" {
		f, err := os.Create(*traceJSONL)
		if err != nil {
			fatal(fmt.Errorf("trace file: %w", err))
		}
		sink := tpascd.NewJSONLSink(f)
		tracer = tpascd.NewTracer(tpascd.TraceTagSink{Run: runHex, Rank: *rank, Next: sink})
		traceFlush = func() {
			sink.Flush()
			f.Close()
		}
	}

	// Chaos wraps the transport, instrumentation wraps chaos: injected
	// delays land in the latency histograms and injected kills/drops in
	// the failure counters, exactly like organic faults would.
	if *chaosDrop > 0 || *chaosDelay > 0 || *chaosKillAt > 0 {
		cseed := *chaosSeed
		if cseed == 0 {
			cseed = *seed + uint64(*rank) + 1
		}
		comm = tpascd.WrapChaos(comm, tpascd.ChaosConfig{
			Seed:      cseed,
			KillAtOp:  *chaosKillAt,
			DropProb:  *chaosDrop,
			DelayProb: *chaosDelay,
			MaxDelay:  *chaosMaxDelay,
			Obs:       reg,
		})
	}
	comm = tpascd.InstrumentComm(comm, reg)

	agg := tpascd.Averaging
	if *adaptive {
		agg = tpascd.Adaptive
	}
	cfg := tpascd.ClusterConfig{Aggregation: agg, Link: tpascd.Link10GbE, Trace: tracer}
	view := tpascd.PartitionView(p, form, parts[*rank])
	local, err := tpascd.NewLocalSolver(view, tpascd.DriverSpec{
		Name: solverName, Threads: *threads, BucketSize: *bucket, Seed: *seed + uint64(*rank),
	})
	if err != nil {
		fatal(err)
	}
	w, err := tpascd.NewWorker(comm, local, view, cfg)
	if err != nil {
		fatal(err)
	}

	// The checkpoint kind ties a file to one rank of one run shape — the
	// local solver and partition included, since the permutation stream a
	// resume must replay and the coordinates a rank owns depend on them —
	// so a rank cannot silently resume from another rank's (or another
	// configuration's) state.
	ckptKind := fmt.Sprintf("distworker-%s-%s-%s-r%d-of%d-seed%d", *formFlag, solverName, *partitionFlag, *rank, *size, *seed)
	start := 0
	if *resume {
		model, epoch, err := loadCheckpoint(*ckptPath, ckptKind, *rank)
		if err != nil {
			fatal(fmt.Errorf("resume: %w", err))
		}
		// Replay the permutation stream past the completed epochs, then
		// restore the model and rebuild the shared vector collectively.
		local.SkipEpochs(epoch)
		if err := w.ResumeFrom(model, epoch); err != nil {
			fatal(fmt.Errorf("resume: %w", err))
		}
		start = epoch
		fmt.Printf("RESUMED rank=%d epoch=%d\n", *rank, epoch)
	}

	for e := start + 1; e <= *epochs; e++ {
		if _, err := w.RunEpoch(); err != nil {
			fatal(fmt.Errorf("epoch %d: %w", e, err))
		}
		if *ckptPath != "" && (e%*ckptEvery == 0 || e == *epochs) {
			model, epoch := w.Snapshot()
			if err := saveCheckpoint(*ckptPath, ckptKind, model, epoch, *rank, runHex); err != nil {
				fatal(fmt.Errorf("checkpoint at epoch %d: %w", e, err))
			}
		}
	}
	gap, err := w.Gap()
	if err != nil {
		fatal(err)
	}
	if *shardOut != "" {
		if err := publishShard(comm, w, *shardOut, numCoords, *rank, *size); err != nil {
			fatal(fmt.Errorf("shard-out: %w", err))
		}
	}
	// One machine-parseable result line per rank.
	fmt.Printf("RESULT rank=%d gap=%.6e gamma=%.4f\n", *rank, gap, w.Gamma())
	if traceFlush != nil {
		traceFlush()
		traceFlush = nil
	}
	if lingerDur > 0 {
		time.Sleep(lingerDur)
	}
}

// saveCheckpoint persists the model through checkpoint.SaveFile (atomic
// temp file + fsync + rename, so a crash mid-save leaves the previous
// checkpoint intact), with the resume position — epoch, rank, run ID —
// stamped into the v3 meta block rather than smuggled as extra vectors.
func saveCheckpoint(path, kind string, model []float32, epoch, rank int, run string) error {
	c := checkpoint.Checkpoint{Kind: kind, Dim: len(model), Vectors: [][]float32{model}}
	checkpoint.TrainState{Epoch: epoch, Rank: rank, Run: run}.Stamp(&c)
	return checkpoint.SaveFile(path, c)
}

func loadCheckpoint(path, kind string, rank int) (model []float32, epoch int, err error) {
	c, err := checkpoint.LoadFile(path, kind)
	if err != nil {
		return nil, 0, err
	}
	st, ok, err := checkpoint.TrainStateOf(c)
	if err != nil {
		return nil, 0, err
	}
	if !ok || len(c.Vectors) != 1 {
		return nil, 0, fmt.Errorf("checkpoint %s: no train state in the meta block (%d vectors, %d meta entries)", path, len(c.Vectors), len(c.Meta))
	}
	if st.Rank != rank {
		return nil, 0, fmt.Errorf("checkpoint %s was written by rank %d, this is rank %d", path, st.Rank, rank)
	}
	return c.Vectors[0], st.Epoch, nil
}

// publishShard saves this rank's trained primal slice as serving shard
// rank-of-size in dir, fingerprinting the (never-materialized) full
// model cooperatively, and has rank 0 write the manifest once a barrier
// confirms every shard file is on disk — so a reader that sees
// manifest.json can load every file it names.
func publishShard(comm tpascd.Comm, w *tpascd.Worker, dir string, dim, rank, size int) error {
	model, _ := w.Snapshot()
	fp, err := tpascd.CooperativeShardFingerprint(comm, tpascd.KindRidge, dim, model)
	if err != nil {
		return err
	}
	sc, err := tpascd.NewShardCheckpoint(tpascd.KindRidge, dim, size, rank, model, fp)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	file := tpascd.ShardCheckpointFileName("model.ckpt", rank, size)
	if err := checkpoint.SaveFile(filepath.Join(dir, file), sc); err != nil {
		return err
	}
	fmt.Printf("SHARD rank=%d file=%s fingerprint=%s\n", rank, file, fp)
	if err := comm.Barrier(); err != nil {
		return fmt.Errorf("awaiting peer shards: %w", err)
	}
	if rank != 0 {
		return nil
	}
	m := tpascd.ShardManifest{
		Plan: tpascd.ShardPlan{Kind: tpascd.KindRidge, Dim: dim, Shards: size, Fingerprint: fp},
	}
	for i := 0; i < size; i++ {
		m.Files = append(m.Files, tpascd.ShardCheckpointFileName("model.ckpt", i, size))
	}
	path := filepath.Join(dir, "manifest.json")
	if err := tpascd.WriteShardManifest(path, m); err != nil {
		return err
	}
	fmt.Printf("MANIFEST %s\n", path)
	return nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "distworker: rank %d: %v\n", curRank, err)
	exit(1)
}
