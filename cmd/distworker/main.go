// Command distworker runs one rank of the distributed training algorithm
// as its own OS process, communicating over TCP — the same deployment
// shape as the paper's MPI cluster (one process per worker machine).
//
// Every rank deterministically regenerates the same synthetic dataset
// from the shared seed and takes its own partition, so no training data
// crosses the network — only shared-vector deltas and scalars do, exactly
// as in Algorithm 3/4.
//
// Start the master (rank 0) first; it prints the bound address workers
// must dial. Thanks to dial retry with backoff, workers may equally be
// started first if the master's address is known in advance:
//
//	distworker -rank 0 -size 4 -listen 127.0.0.1:7777
//	distworker -rank 1 -size 4 -addr 127.0.0.1:7777
//	distworker -rank 2 -size 4 -addr 127.0.0.1:7777
//	distworker -rank 3 -size 4 -addr 127.0.0.1:7777
//
// Fault tolerance: -timeout bounds every collective, so a dead or stalled
// peer surfaces as a typed, rank-attributed error (and a non-zero exit)
// instead of a hang; -join-timeout bounds cluster assembly. With
// -checkpoint FILE each rank atomically persists its model and epoch
// every -checkpoint-every rounds (temp file + rename, so a crash mid-save
// never corrupts the previous checkpoint). After a failure, restart every
// rank with the same flags plus -resume: each rank reloads its model,
// the group agrees on the checkpointed epoch, rebuilds the shared vector
// collectively and continues training where it left off:
//
//	distworker -rank 0 -size 4 -listen 127.0.0.1:7777 -checkpoint r0.ckpt -resume
//	distworker -rank 1 -size 4 -addr 127.0.0.1:7777 -checkpoint r1.ckpt -resume
//	...
//
// Observability: -metrics-addr serves this rank's Prometheus metrics
// (bytes moved, dial retries, peer failures, per-collective latency
// histograms; plus injected-fault counters under chaos), every series
// labeled with this rank, plus sampled Go runtime stats and a
// run_info{rank,run} gauge carrying the cluster's shared run ID. The
// bound address is printed as "METRICS addr" — after the LISTENING line
// on rank 0. -metrics-linger keeps the endpoint scrapeable for a grace
// period after the rank exits, so the counters of a crashed chaos run
// can still be collected. -pprof additionally mounts the runtime
// profiling handlers under /debug/pprof/ on the same address. The
// -chaos-* flags inject deterministic faults (see ChaosConfig) for
// drills and tests.
//
// -trace-jsonl FILE streams this rank's training spans (dist.round,
// dist.gap) as JSON lines, each stamped with the run ID and rank. Point
// obsreport at the per-rank files of one run for a merged timeline and
// compute/communication breakdown.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"tpascd"
	"tpascd/internal/checkpoint"
)

// curRank labels every fatal diagnostic so multi-process failures are
// attributable from the interleaved stderr of a whole cluster.
var curRank int

// lingerDur keeps the -metrics-addr endpoint scrapeable for a grace
// period after the rank finishes or dies, so a monitor (or test) can
// still collect the failure counters of a crashed run.
var lingerDur time.Duration

// traceFlush, when tracing is on, drains the span sink to disk. It is
// invoked on every exit path — including fatal ones, so the spans of a
// chaos-killed rank survive for post-mortem analysis.
var traceFlush func()

// exit flushes traces, lingers (if configured), then terminates with the
// given code.
func exit(code int) {
	if traceFlush != nil {
		traceFlush()
	}
	if lingerDur > 0 {
		time.Sleep(lingerDur)
	}
	os.Exit(code)
}

func main() {
	rank := flag.Int("rank", 0, "this worker's rank in [0, size)")
	size := flag.Int("size", 2, "total number of workers")
	listen := flag.String("listen", "127.0.0.1:0", "master only: address to listen on")
	addr := flag.String("addr", "", "workers only: master address to dial")
	epochs := flag.Int("epochs", 30, "training epochs")
	formFlag := flag.String("form", "dual", "'primal' (partition features) or 'dual' (partition examples)")
	n := flag.Int("n", 8192, "dataset examples")
	m := flag.Int("m", 4096, "dataset features")
	nnz := flag.Int("nnz", 32, "average non-zeros per example")
	lambda := flag.Float64("lambda", 0.001, "regularization λ")
	solverFlag := flag.String("solver", "scd", "local CPU solver: scd | a-scd | wild | syscd")
	threads := flag.Int("threads", 1, "threads for a-scd/wild/syscd locals")
	bucket := flag.Int("bucket", 0, "syscd bucket size in coordinates (0: one cache line of weights)")
	seed := flag.Uint64("seed", 1, "shared dataset/partition seed (must agree across ranks)")
	adaptive := flag.Bool("adaptive", true, "use adaptive aggregation (Algorithm 4)")
	timeout := flag.Duration("timeout", 30*time.Second, "per-collective deadline; a dead peer surfaces within this budget (0 disables)")
	joinTimeout := flag.Duration("join-timeout", 60*time.Second, "total budget for cluster assembly, including dial retries (0 waits forever)")
	ckptPath := flag.String("checkpoint", "", "checkpoint file for this rank (atomic save every -checkpoint-every epochs)")
	ckptEvery := flag.Int("checkpoint-every", 5, "epochs between checkpoints")
	resume := flag.Bool("resume", false, "resume from -checkpoint instead of training from scratch (all ranks must resume together)")
	metricsAddr := flag.String("metrics-addr", "", "serve Prometheus metrics for this rank on this address (empty disables)")
	metricsLinger := flag.Duration("metrics-linger", 0, "keep the metrics endpoint up this long after the rank finishes or fails")
	pprofOn := flag.Bool("pprof", false, "mount /debug/pprof/ handlers on the metrics address (requires -metrics-addr)")
	traceJSONL := flag.String("trace-jsonl", "", "stream this rank's training spans as JSON lines to this file")
	chaosDrop := flag.Float64("chaos-drop", 0, "chaos: probability a collective is dropped (peer appears dead)")
	chaosDelay := flag.Float64("chaos-delay", 0, "chaos: probability a collective is delayed")
	chaosMaxDelay := flag.Duration("chaos-max-delay", 10*time.Millisecond, "chaos: maximum injected delay")
	chaosKillAt := flag.Int("chaos-kill-at", 0, "chaos: kill this rank on its Nth collective (0 disables)")
	chaosSeed := flag.Uint64("chaos-seed", 0, "chaos: fault-injection seed (defaults to -seed plus rank)")
	flag.Parse()
	curRank = *rank
	lingerDur = *metricsLinger

	// Validate the flag combinations up front: wrong -listen/-addr pairings
	// used to surface only as a confusing mid-training hang or dial error.
	set := map[string]bool{}
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if *rank < 0 || *rank >= *size {
		fatal(fmt.Errorf("rank %d outside [0,%d)", *rank, *size))
	}
	if *rank == 0 && set["addr"] {
		fatal(fmt.Errorf("-addr is for workers; rank 0 listens (use -listen)"))
	}
	if *rank != 0 && set["listen"] {
		fatal(fmt.Errorf("-listen is for rank 0; workers dial the master (use -addr)"))
	}
	if *rank != 0 && *addr == "" {
		fatal(fmt.Errorf("workers need -addr"))
	}
	if *formFlag != "primal" && *formFlag != "dual" {
		fatal(fmt.Errorf("-form %q (want 'primal' or 'dual')", *formFlag))
	}
	// Resolve the solver through the engine registry now: a typo should
	// fail before the dataset is generated or the cluster assembles, and
	// the canonical name feeds the checkpoint kind below (aliases must not
	// fork a rank's resume identity).
	solverName, err := tpascd.CanonicalDriver(*solverFlag)
	if err != nil {
		fatal(err)
	}
	if *resume && *ckptPath == "" {
		fatal(fmt.Errorf("-resume requires -checkpoint"))
	}
	if *ckptEvery < 1 {
		fatal(fmt.Errorf("-checkpoint-every %d (want >= 1)", *ckptEvery))
	}
	if *chaosDrop < 0 || *chaosDrop > 1 || *chaosDelay < 0 || *chaosDelay > 1 {
		fatal(fmt.Errorf("chaos probabilities must be in [0,1]"))
	}
	if *pprofOn && *metricsAddr == "" {
		fatal(fmt.Errorf("-pprof requires -metrics-addr"))
	}

	// Observability: one registry per rank. Everything below threads it
	// unconditionally — a nil registry hands out no-op handles — so the
	// training path is identical whether or not metrics are exported.
	var reg *tpascd.MetricsRegistry
	metricsBound := ""
	if *metricsAddr != "" {
		// Every series this rank registers carries a rank label, so the
		// scrapes of a whole cluster land in one database without clashing.
		reg = tpascd.NewMetricsRegistry().With("rank", fmt.Sprint(*rank))
		ln, err := net.Listen("tcp", *metricsAddr)
		if err != nil {
			fatal(fmt.Errorf("metrics listener: %w", err))
		}
		mux := http.NewServeMux()
		mux.Handle("/metrics", tpascd.MetricsHandler(reg))
		if *pprofOn {
			tpascd.RegisterPprof(mux)
		}
		go http.Serve(ln, mux)
		collector := tpascd.StartRuntimeMetrics(reg, 0)
		defer collector.Stop()
		metricsBound = ln.Addr().String()
		// Workers announce the endpoint immediately (it is live during
		// dial retries); rank 0 prints it after "LISTENING addr" so that
		// line stays first on its stdout, which the harness parses.
		if *rank != 0 {
			fmt.Printf("METRICS %s\n", metricsBound)
		}
	}

	// Identical data on every rank, from the shared seed.
	a, y, err := tpascd.GenerateWebspam(tpascd.WebspamConfig{
		N: *n, M: *m, AvgNNZPerRow: *nnz, Skew: 1, NoiseRate: 0.05, Seed: *seed,
	})
	if err != nil {
		fatal(err)
	}
	p, err := tpascd.NewProblem(a, y, *lambda)
	if err != nil {
		fatal(err)
	}
	form := tpascd.Dual
	numCoords := p.N
	if *formFlag == "primal" {
		form = tpascd.Primal
		numCoords = p.M
	}
	parts := tpascd.PartitionRandom(numCoords, *size, *seed)

	commCfg := tpascd.DefaultCommConfig()
	commCfg.CollectiveTimeout = *timeout
	commCfg.JoinTimeout = *joinTimeout
	commCfg.Seed = *seed
	commCfg.Obs = reg

	var comm tpascd.Comm
	if *rank == 0 {
		master, bound, err := tpascd.ListenTCPConfig(*listen, *size, commCfg)
		if err != nil {
			fatal(err)
		}
		// Workers parse this line to learn where to dial.
		fmt.Printf("LISTENING %s\n", bound)
		if metricsBound != "" {
			fmt.Printf("METRICS %s\n", metricsBound)
		}
		comm = master
	} else {
		comm, err = tpascd.DialTCPConfig(*addr, *rank, *size, commCfg)
		if err != nil {
			fatal(err)
		}
	}
	defer comm.Close()

	// The master generated the run correlation ID and the handshake gave
	// it to every worker; stamp it onto this rank's metrics (the standard
	// info-metric join: run_info{rank,run} = 1) and every emitted span.
	runHex := tpascd.FormatRunID(comm.Run())
	reg.With("run", runHex).Gauge("run_info").Set(1)

	var tracer *tpascd.Tracer
	if *traceJSONL != "" {
		f, err := os.Create(*traceJSONL)
		if err != nil {
			fatal(fmt.Errorf("trace file: %w", err))
		}
		sink := tpascd.NewJSONLSink(f)
		tracer = tpascd.NewTracer(tpascd.TraceTagSink{Run: runHex, Rank: *rank, Next: sink})
		traceFlush = func() {
			sink.Flush()
			f.Close()
		}
	}

	// Chaos wraps the transport, instrumentation wraps chaos: injected
	// delays land in the latency histograms and injected kills/drops in
	// the failure counters, exactly like organic faults would.
	if *chaosDrop > 0 || *chaosDelay > 0 || *chaosKillAt > 0 {
		cseed := *chaosSeed
		if cseed == 0 {
			cseed = *seed + uint64(*rank) + 1
		}
		comm = tpascd.WrapChaos(comm, tpascd.ChaosConfig{
			Seed:      cseed,
			KillAtOp:  *chaosKillAt,
			DropProb:  *chaosDrop,
			DelayProb: *chaosDelay,
			MaxDelay:  *chaosMaxDelay,
			Obs:       reg,
		})
	}
	comm = tpascd.InstrumentComm(comm, reg)

	agg := tpascd.Averaging
	if *adaptive {
		agg = tpascd.Adaptive
	}
	cfg := tpascd.ClusterConfig{Aggregation: agg, Link: tpascd.Link10GbE, Trace: tracer}
	view := tpascd.PartitionView(p, form, parts[*rank])
	local, err := tpascd.NewLocalSolver(view, tpascd.DriverSpec{
		Name: solverName, Threads: *threads, BucketSize: *bucket, Seed: *seed + uint64(*rank),
	})
	if err != nil {
		fatal(err)
	}
	w, err := tpascd.NewWorker(comm, local, view, cfg)
	if err != nil {
		fatal(err)
	}

	// The checkpoint kind ties a file to one rank of one run shape — the
	// local solver included, since the permutation stream a resume must
	// replay depends on the driver — so a rank cannot silently resume from
	// another rank's (or another configuration's) state.
	ckptKind := fmt.Sprintf("distworker-%s-%s-r%d-of%d-seed%d", *formFlag, solverName, *rank, *size, *seed)
	start := 0
	if *resume {
		model, epoch, err := loadCheckpoint(*ckptPath, ckptKind)
		if err != nil {
			fatal(fmt.Errorf("resume: %w", err))
		}
		// Replay the permutation stream past the completed epochs, then
		// restore the model and rebuild the shared vector collectively.
		local.SkipEpochs(epoch)
		if err := w.ResumeFrom(model, epoch); err != nil {
			fatal(fmt.Errorf("resume: %w", err))
		}
		start = epoch
		fmt.Printf("RESUMED rank=%d epoch=%d\n", *rank, epoch)
	}

	for e := start + 1; e <= *epochs; e++ {
		if _, err := w.RunEpoch(); err != nil {
			fatal(fmt.Errorf("epoch %d: %w", e, err))
		}
		if *ckptPath != "" && (e%*ckptEvery == 0 || e == *epochs) {
			model, epoch := w.Snapshot()
			if err := saveCheckpoint(*ckptPath, ckptKind, model, epoch); err != nil {
				fatal(fmt.Errorf("checkpoint at epoch %d: %w", e, err))
			}
		}
	}
	gap, err := w.Gap()
	if err != nil {
		fatal(err)
	}
	// One machine-parseable result line per rank.
	fmt.Printf("RESULT rank=%d gap=%.6e gamma=%.4f\n", *rank, gap, w.Gamma())
	if traceFlush != nil {
		traceFlush()
		traceFlush = nil
	}
	if lingerDur > 0 {
		time.Sleep(lingerDur)
	}
}

// saveCheckpoint persists model+epoch through checkpoint.SaveFile (atomic
// temp file + fsync + rename, so a crash mid-save leaves the previous
// checkpoint intact).
func saveCheckpoint(path, kind string, model []float32, epoch int) error {
	c := checkpoint.Checkpoint{Kind: kind, Dim: len(model), Vectors: [][]float32{model, {float32(epoch)}}}
	return checkpoint.SaveFile(path, c)
}

func loadCheckpoint(path, kind string) (model []float32, epoch int, err error) {
	c, err := checkpoint.LoadFile(path, kind)
	if err != nil {
		return nil, 0, err
	}
	if len(c.Vectors) != 2 || len(c.Vectors[1]) != 1 {
		return nil, 0, fmt.Errorf("checkpoint %s: unexpected layout (%d vectors)", path, len(c.Vectors))
	}
	return c.Vectors[0], int(c.Vectors[1][0]), nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "distworker: rank %d: %v\n", curRank, err)
	exit(1)
}
