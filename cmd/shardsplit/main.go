// Command shardsplit cuts a serving checkpoint into K shard
// checkpoints plus a manifest, for the sharded serving tier: each shard
// holds one contiguous coordinate range of the weight vector and the
// MetaShard* identity block (index, range, plan fingerprint) that lets
// predserve report — and the aggregator verify — exactly which slice of
// which model it is serving. The reverse direction (-merge) reassembles
// the original checkpoint bitwise, which doubles as an integrity check
// on a shard set.
//
// Usage:
//
//	scdtrain -data train.svm -save model.ckpt
//	shardsplit -model model.ckpt -shards 3 -out shards/
//	predserve -model shards/model.shard0-of-3.ckpt -shard 0/3 -manifest shards/manifest.json &
//	...
//	predrouter -shards shards/manifest.json -groups "...;...;..."
//
//	shardsplit -merge merged.ckpt shards/model.shard*.ckpt
package main

import (
	"flag"
	"fmt"
	"os"

	"tpascd"
)

func main() {
	model := flag.String("model", "", "serving checkpoint to split")
	shards := flag.Int("shards", 0, "number of contiguous coordinate ranges to cut")
	out := flag.String("out", ".", "directory for the shard checkpoints and manifest.json")
	merge := flag.String("merge", "", "reassemble: write the merged checkpoint here from the shard files given as arguments")
	flag.Parse()

	if *merge != "" {
		if flag.NArg() == 0 {
			fatal(fmt.Errorf("-merge needs the shard checkpoint files as arguments"))
		}
		if err := tpascd.MergeShardCheckpoints(*merge, flag.Args()...); err != nil {
			fatal(err)
		}
		fmt.Printf("merged %d shards into %s\n", flag.NArg(), *merge)
		return
	}

	if *model == "" || *shards < 1 {
		fmt.Fprintln(os.Stderr, "shardsplit: -model and -shards are required (or -merge)")
		flag.Usage()
		os.Exit(2)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		fatal(err)
	}
	m, err := tpascd.SplitServingCheckpoint(*model, *out, *shards)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("split %s (%s, %d features) into %d shards, plan %s\n",
		*model, m.Kind, m.Dim, m.Shards, m.Fingerprint)
	for i, f := range m.Files {
		lo, hi := m.Range(i)
		fmt.Printf("  shard %d: [%d,%d) -> %s\n", i, lo, hi, f)
	}
	fmt.Printf("manifest: %s/manifest.json\n", *out)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "shardsplit: %v\n", err)
	os.Exit(1)
}
