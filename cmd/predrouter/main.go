// Command predrouter fronts a fleet of predserve replicas: it
// health-probes every replica, load-balances POST /predict across the
// routable ones, retries failures and hedges stragglers within explicit
// budgets, and — when the whole fleet is down — degrades hot keys to
// clearly-marked stale answers from a bounded cache instead of failing.
//
// Endpoints:
//
//	POST /predict  proxied to a healthy replica (same body formats as
//	               predserve); answers carry X-Tpascd-Stale: true and a
//	               "stale": true field when served from the degradation
//	               cache during a full outage
//	GET  /healthz  router liveness, replica-state census, and the live
//	               model's identity passed through from a replica
//	GET  /readyz   200 while at least one replica is routable
//	GET  /replicas per-replica state and in-flight counts
//	GET  /metrics  routing counters (retries, hedges, evictions,
//	               reinstatements, stale answers) and latency
//	               histograms, Prometheus text exposition
//
// Replica health is a state machine (healthy → suspect → evicted →
// probation) fed by both active /readyz probes and request outcomes;
// evicted replicas are re-probed on a jittered exponential backoff and
// re-enter rotation through probation. The -chaos-* flags wrap the
// outbound HTTP path with seed-deterministic fault injection (replica
// kills, truncated responses, added latency) for resilience drills —
// probes see the same faults requests do, so injected outages drive
// real evictions.
//
// Usage:
//
//	predserve -model model.ckpt -listen 127.0.0.1:8081 &
//	predserve -model model.ckpt -listen 127.0.0.1:8082 &
//	predserve -model model.ckpt -listen 127.0.0.1:8083 &
//	predrouter -replicas 127.0.0.1:8081,127.0.0.1:8082,127.0.0.1:8083 -listen :8080
//
// With -shards, predrouter instead runs the sharded-serving aggregator:
// the manifest (from shardsplit) names a K-shard plan, -groups (or the
// manifest's groups field) names each shard group's replicas, and every
// /predict fans out to all K groups — each behind its own health-probed,
// retrying, hedging client — has its partial margins summed exactly, and
// the link function applied once at the top. A lost shard group degrades
// explicitly (stale cache or 503 with X-Tpascd-Shard-Down), never to a
// truncated margin:
//
//	shardsplit -model model.ckpt -shards 3 -out shards/
//	predserve -model shards/model.shard0-of-3.ckpt -shard 0/3 -listen 127.0.0.1:9001 &
//	...
//	predrouter -shards shards/manifest.json \
//	  -groups "127.0.0.1:9001,127.0.0.1:9004;127.0.0.1:9002,127.0.0.1:9005;127.0.0.1:9003,127.0.0.1:9006"
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"tpascd"
)

func main() {
	replicas := flag.String("replicas", "", "comma-separated predserve backends, host:port each (required unless -shards)")
	shardsManifest := flag.String("shards", "", "shard manifest (from shardsplit): run as the fan-out aggregator over K shard groups instead of a replica router")
	groupsFlag := flag.String("groups", "", `shard group replica addresses, ";"-separated groups of ","-separated host:ports, index-aligned with the manifest (default: the manifest's groups field)`)
	shardDeadline := flag.Duration("shard-deadline", 2*time.Second, "per-shard-group attempt deadline in aggregator mode (retries and hedges included)")
	listen := flag.String("listen", ":8080", "listen address; use 127.0.0.1:0 for an ephemeral port")
	addrFile := flag.String("addr-file", "", "write the resolved listen address to this file (for scripting against :0)")

	probeEvery := flag.Duration("probe-every", time.Second, "readiness probe interval for routable replicas")
	probeTimeout := flag.Duration("probe-timeout", time.Second, "per-probe timeout")
	failThreshold := flag.Int("fail-threshold", 3, "consecutive probe or request failures before a replica is evicted")
	probation := flag.Int("probation", 2, "consecutive successes an evicted replica needs to be fully reinstated")
	probeBackoff := flag.Duration("probe-backoff", 50*time.Millisecond, "initial re-probe delay for an evicted replica (doubles with jitter)")
	probeBackoffMax := flag.Duration("probe-backoff-max", 2*time.Second, "re-probe delay ceiling")

	maxAttempts := flag.Int("max-attempts", 3, "attempts per request: first try, retries and hedges together")
	retryBudget := flag.Float64("retry-budget", 0.2, "sustained retries allowed as a fraction of request volume")
	hedgeBudget := flag.Float64("hedge-budget", 0.1, "sustained hedged attempts as a fraction of request volume; negative disables hedging")
	hedgeDelay := flag.Duration("hedge-delay", 30*time.Millisecond, "hedge trigger until enough latency samples exist to derive it from the live p95")
	deadline := flag.Duration("deadline", 5*time.Second, "end-to-end deadline per client request, attempts included")
	cacheSize := flag.Int("cache", 1024, "stale-answer cache entries for full-outage degradation; negative disables")
	seed := flag.Uint64("seed", 1, "seed for replica picking and probe jitter")

	chaosSeed := flag.Uint64("chaos-seed", 0, "seed for fault injection on the outbound HTTP path")
	chaosKill := flag.Float64("chaos-kill-prob", 0, "per-request probability of marking the target replica dead for -chaos-down-for")
	chaosDownFor := flag.Duration("chaos-down-for", time.Second, "how long a chaos-killed replica stays unreachable")
	chaosTruncate := flag.Float64("chaos-truncate-prob", 0, "per-response probability of truncating the body mid-read")
	chaosDelay := flag.Float64("chaos-delay-prob", 0, "per-request probability of adding latency up to -chaos-max-delay")
	chaosMaxDelay := flag.Duration("chaos-max-delay", 50*time.Millisecond, "upper bound for injected latency")

	pprofOn := flag.Bool("pprof", false, "mount /debug/pprof/ handlers alongside the routing endpoints")
	traceJSONL := flag.String("trace-jsonl", "", "append router.request/route.attempt (and shard.leg) spans for traced requests to this JSONL file (feed it to fleetreport)")
	traceSample := flag.Float64("trace-sample", 0, "probability of minting a trace ID for requests without an X-Tpascd-Trace header; header-carrying requests are always traced")
	flag.Parse()

	if *replicas == "" && *shardsManifest == "" {
		fmt.Fprintln(os.Stderr, "predrouter: -replicas or -shards is required")
		flag.Usage()
		os.Exit(2)
	}

	obsReg := tpascd.NewMetricsRegistry()

	var tracer *tpascd.Tracer
	var traceFlush func()
	if *traceJSONL != "" {
		tf, err := os.Create(*traceJSONL)
		if err != nil {
			fatal(err)
		}
		sink := tpascd.NewJSONLSink(tf)
		tracer = tpascd.NewTracer(&tpascd.TraceTagSink{
			OmitRank: true,
			Attrs:    []tpascd.TraceAttr{tpascd.TraceA("service", "predrouter")},
			Next:     sink,
		})
		traceFlush = func() {
			if err := sink.Flush(); err != nil {
				fmt.Fprintf(os.Stderr, "predrouter: trace flush: %v\n", err)
			}
			if err := tf.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "predrouter: trace flush: %v\n", err)
			}
		}
	}

	cfg := tpascd.RouterConfig{
		Replicas: strings.Split(*replicas, ","),
		Obs:      obsReg,
		Probe: tpascd.RouterProbeConfig{
			Interval:           *probeEvery,
			Timeout:            *probeTimeout,
			FailThreshold:      *failThreshold,
			ProbationSuccesses: *probation,
			Backoff:            tpascd.BackoffPolicy{Initial: *probeBackoff, Max: *probeBackoffMax},
		},
		MaxAttempts: *maxAttempts,
		RetryBudget: *retryBudget,
		HedgeBudget: *hedgeBudget,
		HedgeDelay:  *hedgeDelay,
		Deadline:    *deadline,
		CacheSize:   *cacheSize,
		Seed:        *seed,
		Trace:       tracer,
		TraceSample: *traceSample,
	}
	if *chaosKill > 0 || *chaosTruncate > 0 || *chaosDelay > 0 {
		// The chaos transport reports its injections into the router's
		// registry, so drills and real recoveries share one /metrics page.
		cfg.Transport = tpascd.RouterChaosTransport(nil, tpascd.RouterChaosConfig{
			Seed:         *chaosSeed,
			KillProb:     *chaosKill,
			DownFor:      *chaosDownFor,
			TruncateProb: *chaosTruncate,
			DelayProb:    *chaosDelay,
			MaxDelay:     *chaosMaxDelay,
			Obs:          obsReg,
		})
		fmt.Printf("chaos enabled: seed=%d kill=%.3g truncate=%.3g delay=%.3g\n",
			*chaosSeed, *chaosKill, *chaosTruncate, *chaosDelay)
	}
	var (
		handler http.Handler
		closer  func()
		summary func()
	)
	if *shardsManifest != "" {
		// Aggregator mode: one health-probed client per shard group, the
		// router flags become the per-group template.
		man, err := tpascd.LoadShardManifest(*shardsManifest)
		if err != nil {
			fatal(err)
		}
		var groups [][]string
		if *groupsFlag != "" {
			for _, g := range strings.Split(*groupsFlag, ";") {
				groups = append(groups, strings.Split(g, ","))
			}
		}
		rcfg := cfg
		rcfg.Replicas = nil
		rcfg.Obs = nil
		rcfg.Deadline = *shardDeadline
		agg, err := tpascd.NewShardAggregator(tpascd.ShardAggregatorConfig{
			Manifest:    man,
			Groups:      groups,
			Route:       rcfg,
			Deadline:    *deadline,
			CacheSize:   *cacheSize,
			Obs:         obsReg,
			Seed:        *seed,
			Trace:       tracer,
			TraceSample: *traceSample,
		})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("aggregating %d shard groups: %s model, %d features, plan %s\n",
			man.Shards, man.Kind, man.Dim, man.Fingerprint)
		handler = agg.Handler()
		closer = agg.Close
		summary = func() {
			var ev, ret int64
			for i := 0; i < man.Shards; i++ {
				m := agg.Group(i).Metrics()
				ev += m.Evictions()
				ret += m.Retries()
			}
			fmt.Printf("aggregated requests done: %d retries, %d evictions across %d groups\n", ret, ev, man.Shards)
		}
	} else {
		router, err := tpascd.NewRouter(cfg)
		if err != nil {
			fatal(err)
		}
		handler = router.Handler()
		closer = router.Close
		summary = func() {
			m := router.Metrics()
			fmt.Printf("routed %d requests: %d retries, %d hedges (%d won), %d evictions, %d reinstatements, %d stale, %d errors\n",
				m.Requests(), m.Retries(), m.Hedges(), m.HedgeWins(), m.Evictions(), m.Reinstatements(), m.StaleServed(), m.Errors())
		}
		fmt.Printf("routing %d replicas\n", len(cfg.Replicas))
	}
	defer closer()

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("listening on %s\n", ln.Addr())
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			fatal(err)
		}
	}

	collector := tpascd.StartRuntimeMetrics(obsReg, 0)
	defer collector.Stop()

	if *pprofOn {
		mux := http.NewServeMux()
		tpascd.RegisterPprof(mux)
		mux.Handle("/", handler)
		handler = mux
	}
	httpSrv := &http.Server{Handler: handler}
	done := make(chan error, 1)
	go func() { done <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("received %s, shutting down\n", s)
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}

	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		fmt.Fprintf(os.Stderr, "predrouter: shutdown: %v\n", err)
	}
	closer()
	if traceFlush != nil {
		traceFlush()
	}
	summary()
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "predrouter: %v\n", err)
	os.Exit(1)
}
