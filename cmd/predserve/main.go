// Command predserve serves predictions from a trained model checkpoint
// over HTTP, with dynamic micro-batching and hot reload of the
// checkpoint file.
//
// Endpoints:
//
//	POST /predict  JSON {"indices":[...],"values":[...]} (0-based), a
//	               JSON {"instances":[...]} batch of the same, or a
//	               text/plain body of LIBSVM lines (1-based indices)
//	GET  /healthz  model identity, 503 until a model is live
//	GET  /readyz   200 only while serving: a model is loaded and the
//	               process is not draining (SIGTERM flips it to 503
//	               -drain-grace before the listener closes, so a router
//	               stops routing here ahead of shutdown)
//	GET  /metrics  request/batch counters and latency histograms,
//	               Prometheus text exposition
//	GET  /metrics.json  the same registry as a JSON snapshot with
//	               derived latency percentiles
//
// The metrics registry also carries sampled Go runtime stats (heap, GC
// pauses, goroutines). -pprof mounts the /debug/pprof/ profiling
// handlers alongside the serving endpoints.
//
// Usage:
//
//	scdtrain -data train.svm -save model.ckpt
//	predserve -model model.ckpt -listen :8080
//
// The checkpoint file is re-read whenever it changes (trainers save
// atomically, so a partial file is never observed) and the new model
// goes live between batches without dropping in-flight requests.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"tpascd"
)

func main() {
	modelPath := flag.String("model", "", "serving checkpoint written by scdtrain -save (required)")
	listen := flag.String("listen", ":8080", "listen address; use 127.0.0.1:0 for an ephemeral port")
	addrFile := flag.String("addr-file", "", "write the resolved listen address to this file (for scripting against :0)")
	watchEvery := flag.Duration("watch", 2*time.Second, "poll the checkpoint for changes this often; 0 disables hot reload")
	maxBatch := flag.Int("max-batch", 64, "maximum rows scored per micro-batch")
	maxWait := flag.Duration("max-wait", 500*time.Microsecond, "how long a forming batch waits for more rows")
	workers := flag.Int("workers", 0, "scoring goroutines per batch; 0 means GOMAXPROCS")
	deadline := flag.Duration("deadline", 2*time.Second, "per-request scoring deadline; negative disables")
	drainGrace := flag.Duration("drain-grace", 500*time.Millisecond, "how long /readyz reports draining before the listener closes on SIGTERM, so routers can stop sending traffic first")
	shardFlag := flag.String("shard", "", `expected shard identity as "k/K" (0-based): refuse to start unless the checkpoint is exactly shard k of a K-shard plan`)
	manifestPath := flag.String("manifest", "", "shard manifest to verify the checkpoint's plan fingerprint against")
	pprofOn := flag.Bool("pprof", false, "mount /debug/pprof/ handlers alongside the serving endpoints")
	traceJSONL := flag.String("trace-jsonl", "", "append serve.request/serve.batch spans for traced requests to this JSONL file (feed it to fleetreport)")
	flag.Parse()

	if *modelPath == "" {
		fmt.Fprintln(os.Stderr, "predserve: -model is required")
		flag.Usage()
		os.Exit(2)
	}

	reg := tpascd.NewModelRegistry()
	m, err := reg.LoadFile(*modelPath)
	if err != nil {
		fatal(err)
	}
	if err := verifyShard(m, *shardFlag, *manifestPath); err != nil {
		fatal(err)
	}
	if m.Sharded() {
		fmt.Printf("loaded %s model shard %d/%d: coordinates [%d,%d) of %d, plan %s, version %d\n",
			m.Kind, m.ShardIndex, m.ShardCount, m.ShardLo, m.ShardLo+m.Dim(), m.GlobalDim, m.PlanFingerprint, m.Version)
	} else {
		fmt.Printf("loaded %s model: %d features, version %d\n", m.Kind, m.Dim(), m.Version)
	}

	// Listen before building the server: the trace sink stamps every
	// span with the resolved listen address, which is how fleetreport
	// joins a router's attempt spans to the replica that served them.
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("listening on %s\n", ln.Addr())
	if *addrFile != "" {
		if err := os.WriteFile(*addrFile, []byte(ln.Addr().String()), 0o644); err != nil {
			fatal(err)
		}
	}

	var tracer *tpascd.Tracer
	var traceFlush func()
	if *traceJSONL != "" {
		tf, err := os.Create(*traceJSONL)
		if err != nil {
			fatal(err)
		}
		sink := tpascd.NewJSONLSink(tf)
		tracer = tpascd.NewTracer(&tpascd.TraceTagSink{
			OmitRank: true,
			Attrs: []tpascd.TraceAttr{
				tpascd.TraceA("service", "predserve"),
				tpascd.TraceA("addr", ln.Addr().String()),
			},
			Next: sink,
		})
		traceFlush = func() {
			if err := sink.Flush(); err != nil {
				fmt.Fprintf(os.Stderr, "predserve: trace flush: %v\n", err)
			}
			if err := tf.Close(); err != nil {
				fmt.Fprintf(os.Stderr, "predserve: trace flush: %v\n", err)
			}
		}
	}

	srv := tpascd.NewPredictionServer(reg, tpascd.ServerConfig{
		Batcher:  tpascd.BatcherConfig{MaxBatch: *maxBatch, MaxWait: *maxWait, Workers: *workers},
		Deadline: *deadline,
		Trace:    tracer,
	})

	watchCtx, stopWatch := context.WithCancel(context.Background())
	defer stopWatch()
	if *watchEvery > 0 {
		go tpascd.WatchCheckpoint(watchCtx, reg, *watchEvery, func(err error) {
			fmt.Fprintf(os.Stderr, "predserve: reload failed, keeping previous model: %v\n", err)
		})
	}

	// Go runtime stats (heap, GC pauses, goroutines) join the serving
	// counters on the same /metrics endpoint.
	collector := tpascd.StartRuntimeMetrics(srv.Obs(), 0)
	defer collector.Stop()

	var handler http.Handler = srv.Handler()
	if *pprofOn {
		mux := http.NewServeMux()
		tpascd.RegisterPprof(mux)
		mux.Handle("/", srv.Handler())
		handler = mux
	}
	httpSrv := &http.Server{Handler: handler}
	done := make(chan error, 1)
	go func() { done <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case s := <-sig:
		fmt.Printf("received %s, draining\n", s)
		// Flip /readyz to 503 first and hold the listener open for the
		// grace window: a router probing readiness evicts this replica
		// and drains its traffic elsewhere before we stop accepting —
		// the zero-downtime half of a rolling restart.
		srv.SetDraining(true)
		if *drainGrace > 0 {
			time.Sleep(*drainGrace)
		}
	case err := <-done:
		if err != nil && !errors.Is(err, http.ErrServerClosed) {
			fatal(err)
		}
	}

	// Stop accepting, finish in-flight HTTP exchanges, then drain the
	// batcher so every accepted request is scored before exit.
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil {
		fmt.Fprintf(os.Stderr, "predserve: shutdown: %v\n", err)
	}
	stopWatch()
	srv.Close()
	if traceFlush != nil {
		traceFlush()
	}
	snap := srv.Metrics().Snapshot(reg)
	fmt.Printf("served %d requests in %d batches, %d errors\n", snap.Requests, snap.Batches, snap.Errors)
}

// verifyShard cross-checks the loaded model against the operator's
// declared shard identity (-shard k/K) and the plan manifest
// (-manifest). Mis-deployment — the wrong shard file behind a group's
// address, or a shard of a stale model — fails here at startup instead
// of surfacing as an aggregation refusal under traffic.
func verifyShard(m *tpascd.ServingModel, shardFlag, manifestPath string) error {
	if shardFlag != "" {
		var k, n int
		if _, err := fmt.Sscanf(shardFlag, "%d/%d", &k, &n); err != nil {
			return fmt.Errorf(`-shard wants "k/K", got %q`, shardFlag)
		}
		if !m.Sharded() {
			return fmt.Errorf("-shard %s given but the checkpoint is not a shard", shardFlag)
		}
		if m.ShardIndex != k || m.ShardCount != n {
			return fmt.Errorf("-shard %s given but the checkpoint is shard %d/%d", shardFlag, m.ShardIndex, m.ShardCount)
		}
	}
	if manifestPath != "" {
		man, err := tpascd.LoadShardManifest(manifestPath)
		if err != nil {
			return err
		}
		if !m.Sharded() {
			return fmt.Errorf("-manifest given but the checkpoint is not a shard")
		}
		if m.PlanFingerprint != man.Fingerprint {
			return fmt.Errorf("checkpoint plan fingerprint %s does not match manifest %s — a shard of a different model",
				m.PlanFingerprint, man.Fingerprint)
		}
		if m.ShardCount != man.Shards || m.GlobalDim != man.Dim || m.Kind != man.Kind {
			return fmt.Errorf("checkpoint shard identity (%s, dim %d, %d shards) disagrees with manifest (%s, dim %d, %d shards)",
				m.Kind, m.GlobalDim, m.ShardCount, man.Kind, man.Dim, man.Shards)
		}
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "predserve: %v\n", err)
	os.Exit(1)
}
