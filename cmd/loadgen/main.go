// Command loadgen drives a running predserve or predrouter with
// synthetic webspam-like rows and reports throughput, latency
// percentiles and an error breakdown as JSON, so serving changes can be
// compared load-test to load-test.
//
// Usage:
//
//	predserve -model model.ckpt -listen 127.0.0.1:0 -addr-file addr.txt &
//	loadgen -addr "$(cat addr.txt)" -concurrency 8 -duration 10s
//
// The row distribution matches the training generator (same zipf feature
// skew), sized to the serving model's dimension read from /healthz.
//
// For fleet drills against predrouter:
//
//   - -hot-keys/-hot-frac route a fraction of requests to a fixed set
//     of repeated bodies, shared by all workers, so the router's
//     stale-answer cache has hot keys to cover during an outage.
//     Responses marked X-Tpascd-Stale count as ok and are tallied
//     separately in the report.
//   - -burst/-idle shape traffic into on/off duty cycles instead of a
//     steady stream, the harder case for hedging and health probing.
//   - -kill-pid-file/-kill-after/-kill-signal kill one process (a
//     replica, typically) mid-run, so a zero-error report is proof of a
//     zero-downtime topology change.
package main

import (
	"bytes"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"syscall"
	"time"

	"tpascd/internal/datasets"
	"tpascd/internal/obs"
	"tpascd/internal/rng"
)

// tracedSample is one traced request's identity and client-observed
// latency — the join key into fleetreport's per-request timelines.
type tracedSample struct {
	Trace string  `json:"trace"`
	Ms    float64 `json:"ms"`
}

type latencyMs struct {
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

type report struct {
	Target      string    `json:"target"`
	Concurrency int       `json:"concurrency"`
	DurationSec float64   `json:"duration_seconds"`
	RowsPerReq  int       `json:"rows_per_request"`
	Sent        int64     `json:"sent"`
	OK          int64     `json:"ok"`
	Stale       int64     `json:"stale"`
	Errors      int64     `json:"errors"`
	QPS         float64   `json:"qps"`
	RowsPerSec  float64   `json:"rows_per_second"`
	Latency     latencyMs `json:"latency_ms"`
	// ErrorBreakdown classifies failures: "http_<code>" per non-200
	// status, "conn" for transport errors, "timeout" for deadline
	// errors. Absent when every request succeeded.
	ErrorBreakdown map[string]int64 `json:"error_breakdown,omitempty"`
	// Traced counts requests sent with an X-Tpascd-Trace header (with
	// -trace-sample); SlowestTraced holds the slowest of them by
	// client-observed latency, so their trace IDs can be looked up in
	// the fleetreport timelines.
	Traced        int64          `json:"traced,omitempty"`
	SlowestTraced []tracedSample `json:"slowest_traced,omitempty"`
}

func main() {
	addr := flag.String("addr", "", "predserve or predrouter address, host:port or http:// URL (required)")
	concurrency := flag.Int("concurrency", 4, "concurrent client goroutines")
	duration := flag.Duration("duration", 5*time.Second, "how long to generate load")
	rowsPerReq := flag.Int("rows", 1, "rows per /predict request")
	avgNNZ := flag.Int("nnz", 16, "average non-zeros per generated row")
	seed := flag.Uint64("seed", 1, "base random seed (worker i uses seed+i)")
	hotKeys := flag.Int("hot-keys", 0, "size of a shared pool of repeated request bodies; 0 disables")
	hotFrac := flag.Float64("hot-frac", 0.5, "fraction of requests drawn from the hot-key pool")
	burst := flag.Duration("burst", 0, "send at full rate for this long per cycle; 0 means steady load")
	idle := flag.Duration("idle", 0, "pause between bursts (with -burst)")
	killPidFile := flag.String("kill-pid-file", "", "file holding a PID to signal mid-run (a replica, for chaos drills)")
	killAfter := flag.Duration("kill-after", 2*time.Second, "when to send the signal (with -kill-pid-file)")
	killSignal := flag.String("kill-signal", "KILL", "signal to send: KILL, TERM or INT")
	traceSample := flag.Float64("trace-sample", 0, "probability of stamping a request with a fresh X-Tpascd-Trace ID (fleet tracing; the serving processes need -trace-jsonl)")
	traceSlowest := flag.Int("trace-slowest", 10, "how many slowest traced requests to list in the report (with -trace-sample)")
	out := flag.String("out", "", "write the JSON report here instead of stdout")
	flag.Parse()

	if *addr == "" {
		fmt.Fprintln(os.Stderr, "loadgen: -addr is required")
		flag.Usage()
		os.Exit(2)
	}
	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")

	dim, err := modelDim(base)
	if err != nil {
		fatal(err)
	}

	// The hot-key pool is generated once and shared read-only by every
	// worker, so the same bodies recur across the whole run.
	var hotBodies [][]byte
	if *hotKeys > 0 {
		cfg := datasets.WebspamDefault()
		cfg.M = dim
		cfg.AvgNNZPerRow = *avgNNZ
		s, err := datasets.NewRowSampler(cfg, *seed)
		if err != nil {
			fatal(err)
		}
		for i := 0; i < *hotKeys; i++ {
			hotBodies = append(hotBodies, requestBody(s, *rowsPerReq))
		}
	}

	if *killPidFile != "" {
		go killAfterDelay(*killPidFile, *killAfter, *killSignal)
	}

	type worker struct {
		sent, ok, stale, errs, traced int64
		breakdown                     map[string]int64
		slow                          []tracedSample
	}
	workers := make([]worker, *concurrency)
	// One shared latency histogram across all client goroutines — the
	// same lock-free bucket layout and quantile estimator the server
	// exposes on /metrics, so client- and server-side percentiles are
	// directly comparable bucket for bucket.
	hist := obs.NewHistogram(obs.LatencyBuckets())
	stopAt := time.Now().Add(*duration)
	start := time.Now()
	var wg sync.WaitGroup
	wg.Add(*concurrency)
	for w := 0; w < *concurrency; w++ {
		go func(w int) {
			defer wg.Done()
			cfg := datasets.WebspamDefault()
			cfg.M = dim
			cfg.AvgNNZPerRow = *avgNNZ
			s, err := datasets.NewRowSampler(cfg, *seed+uint64(w)+1)
			if err != nil {
				fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
				return
			}
			pick := rng.New(*seed<<16 + uint64(w))
			st := &workers[w]
			st.breakdown = make(map[string]int64)
			for time.Now().Before(stopAt) {
				if *burst > 0 && *idle > 0 {
					waitForBurstWindow(start, *burst, *idle, stopAt)
					if !time.Now().Before(stopAt) {
						return
					}
				}
				body := requestBody(s, *rowsPerReq)
				if len(hotBodies) > 0 && pick.Float64() < *hotFrac {
					body = hotBodies[pick.Intn(len(hotBodies))]
				}
				trace := ""
				if *traceSample > 0 && pick.Float64() < *traceSample {
					trace = obs.FormatTraceID(obs.NewTraceID())
				}
				req, err := http.NewRequest(http.MethodPost, base+"/predict", bytes.NewReader(body))
				if err != nil {
					fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
					return
				}
				req.Header.Set("Content-Type", "application/json")
				if trace != "" {
					req.Header.Set(obs.TraceHeader, trace)
					st.traced++
				}
				t0 := time.Now()
				resp, err := http.DefaultClient.Do(req)
				elapsed := time.Since(t0)
				st.sent++
				if trace != "" {
					st.slow = append(st.slow, tracedSample{Trace: trace, Ms: 1000 * elapsed.Seconds()})
					if len(st.slow) > 8*(*traceSlowest)+8 {
						sortTraced(st.slow)
						st.slow = st.slow[:*traceSlowest+1]
					}
				}
				if err != nil {
					st.errs++
					st.breakdown[errClass(err)]++
					continue
				}
				stale := resp.Header.Get("X-Tpascd-Stale") == "true"
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					st.errs++
					st.breakdown["http_"+strconv.Itoa(resp.StatusCode)]++
					continue
				}
				st.ok++
				if stale {
					st.stale++
				}
				hist.Observe(elapsed.Seconds())
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := report{
		Target:      base,
		Concurrency: *concurrency,
		DurationSec: elapsed.Seconds(),
		RowsPerReq:  *rowsPerReq,
	}
	var slow []tracedSample
	for i := range workers {
		rep.Sent += workers[i].sent
		rep.OK += workers[i].ok
		rep.Stale += workers[i].stale
		rep.Errors += workers[i].errs
		rep.Traced += workers[i].traced
		slow = append(slow, workers[i].slow...)
		for class, n := range workers[i].breakdown {
			if rep.ErrorBreakdown == nil {
				rep.ErrorBreakdown = make(map[string]int64)
			}
			rep.ErrorBreakdown[class] += n
		}
	}
	if len(slow) > 0 && *traceSlowest > 0 {
		sortTraced(slow)
		if len(slow) > *traceSlowest {
			slow = slow[:*traceSlowest]
		}
		rep.SlowestTraced = slow
	}
	rep.QPS = float64(rep.OK) / elapsed.Seconds()
	rep.RowsPerSec = rep.QPS * float64(*rowsPerReq)
	if hist.Count() > 0 {
		q := func(p float64) float64 { return 1000 * hist.Quantile(p) }
		rep.Latency = latencyMs{P50: q(0.50), P90: q(0.90), P99: q(0.99), Max: 1000 * hist.Max()}
	}

	enc, _ := json.MarshalIndent(rep, "", "  ")
	enc = append(enc, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			fatal(err)
		}
	} else {
		os.Stdout.Write(enc)
	}
	if rep.Errors > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: %d of %d requests failed: %v\n", rep.Errors, rep.Sent, rep.ErrorBreakdown)
		os.Exit(1)
	}
}

// waitForBurstWindow sleeps until the duty cycle is in its burst phase
// (cycles are aligned to the run start, shared by all workers), or
// until the run deadline passes.
func waitForBurstWindow(start time.Time, burst, idle time.Duration, stopAt time.Time) {
	cycle := burst + idle
	for time.Now().Before(stopAt) {
		if time.Since(start)%cycle < burst {
			return
		}
		time.Sleep(time.Millisecond)
	}
}

// sortTraced orders traced samples slowest first, trace ID breaking
// ties so equal latencies order deterministically.
func sortTraced(s []tracedSample) {
	sort.Slice(s, func(i, j int) bool {
		if s[i].Ms != s[j].Ms {
			return s[i].Ms > s[j].Ms
		}
		return s[i].Trace < s[j].Trace
	})
}

// errClass maps a transport error to a breakdown key.
func errClass(err error) string {
	var nerr net.Error
	if errors.As(err, &nerr) && nerr.Timeout() {
		return "timeout"
	}
	return "conn"
}

// killAfterDelay signals the PID read from pidFile after the delay —
// the scripted "replica dies mid-run" half of a chaos drill.
func killAfterDelay(pidFile string, after time.Duration, sigName string) {
	sig := map[string]syscall.Signal{
		"KILL": syscall.SIGKILL,
		"TERM": syscall.SIGTERM,
		"INT":  syscall.SIGINT,
	}[strings.ToUpper(sigName)]
	if sig == 0 {
		fmt.Fprintf(os.Stderr, "loadgen: unknown -kill-signal %q, using KILL\n", sigName)
		sig = syscall.SIGKILL
	}
	time.Sleep(after)
	raw, err := os.ReadFile(pidFile)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: kill: %v\n", err)
		return
	}
	pid, err := strconv.Atoi(strings.TrimSpace(string(raw)))
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: kill: bad pid in %s: %v\n", pidFile, err)
		return
	}
	if err := syscall.Kill(pid, sig); err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: kill %d: %v\n", pid, err)
		return
	}
	fmt.Fprintf(os.Stderr, "loadgen: sent SIG%s to pid %d after %s\n", strings.ToUpper(sigName), pid, after)
}

// modelDim asks /healthz for the live model's feature count so generated
// rows index real features. global_dim wins over model_dim when both are
// present: against a shard or a shard aggregator, requests must span the
// whole model's coordinate space, not one shard's slice of it.
func modelDim(base string) (int, error) {
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var health struct {
		Dim       int `json:"model_dim"`
		GlobalDim int `json:"global_dim"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		return 0, err
	}
	if health.GlobalDim > 0 {
		health.Dim = health.GlobalDim
	}
	if resp.StatusCode != http.StatusOK || health.Dim <= 0 {
		return 0, fmt.Errorf("server not serving a model (healthz status %d)", resp.StatusCode)
	}
	return health.Dim, nil
}

// requestBody draws rows from the sampler and encodes a /predict JSON
// body — single-instance form for one row, instances array otherwise.
func requestBody(s *datasets.RowSampler, rows int) []byte {
	type instance struct {
		Indices []int32   `json:"indices"`
		Values  []float32 `json:"values"`
	}
	draw := func() instance {
		idx, val := s.Next()
		return instance{
			Indices: append([]int32(nil), idx...),
			Values:  append([]float32(nil), val...),
		}
	}
	var body any
	if rows == 1 {
		body = draw()
	} else {
		insts := make([]instance, rows)
		for i := range insts {
			insts[i] = draw()
		}
		body = map[string]any{"instances": insts}
	}
	b, _ := json.Marshal(body)
	return b
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
	os.Exit(1)
}
