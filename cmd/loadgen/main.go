// Command loadgen drives a running predserve with synthetic
// webspam-like rows and reports throughput and latency percentiles as
// JSON, so serving changes can be compared load-test to load-test.
//
// Usage:
//
//	predserve -model model.ckpt -listen 127.0.0.1:0 -addr-file addr.txt &
//	loadgen -addr "$(cat addr.txt)" -concurrency 8 -duration 10s
//
// The row distribution matches the training generator (same zipf feature
// skew), sized to the serving model's dimension read from /healthz.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strings"
	"sync"
	"time"

	"tpascd/internal/datasets"
	"tpascd/internal/obs"
)

type latencyMs struct {
	P50 float64 `json:"p50"`
	P90 float64 `json:"p90"`
	P99 float64 `json:"p99"`
	Max float64 `json:"max"`
}

type report struct {
	Target      string    `json:"target"`
	Concurrency int       `json:"concurrency"`
	DurationSec float64   `json:"duration_seconds"`
	RowsPerReq  int       `json:"rows_per_request"`
	Sent        int64     `json:"sent"`
	OK          int64     `json:"ok"`
	Errors      int64     `json:"errors"`
	QPS         float64   `json:"qps"`
	RowsPerSec  float64   `json:"rows_per_second"`
	Latency     latencyMs `json:"latency_ms"`
}

func main() {
	addr := flag.String("addr", "", "predserve address, host:port or http:// URL (required)")
	concurrency := flag.Int("concurrency", 4, "concurrent client goroutines")
	duration := flag.Duration("duration", 5*time.Second, "how long to generate load")
	rowsPerReq := flag.Int("rows", 1, "rows per /predict request")
	avgNNZ := flag.Int("nnz", 16, "average non-zeros per generated row")
	seed := flag.Uint64("seed", 1, "base random seed (worker i uses seed+i)")
	out := flag.String("out", "", "write the JSON report here instead of stdout")
	flag.Parse()

	if *addr == "" {
		fmt.Fprintln(os.Stderr, "loadgen: -addr is required")
		flag.Usage()
		os.Exit(2)
	}
	base := *addr
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	base = strings.TrimRight(base, "/")

	dim, err := modelDim(base)
	if err != nil {
		fatal(err)
	}

	type worker struct {
		sent, ok, errs int64
	}
	workers := make([]worker, *concurrency)
	// One shared latency histogram across all client goroutines — the
	// same lock-free bucket layout and quantile estimator the server
	// exposes on /metrics, so client- and server-side percentiles are
	// directly comparable bucket for bucket.
	hist := obs.NewHistogram(obs.LatencyBuckets())
	stopAt := time.Now().Add(*duration)
	start := time.Now()
	var wg sync.WaitGroup
	wg.Add(*concurrency)
	for w := 0; w < *concurrency; w++ {
		go func(w int) {
			defer wg.Done()
			cfg := datasets.WebspamDefault()
			cfg.M = dim
			cfg.AvgNNZPerRow = *avgNNZ
			s, err := datasets.NewRowSampler(cfg, *seed+uint64(w))
			if err != nil {
				fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
				return
			}
			st := &workers[w]
			for time.Now().Before(stopAt) {
				body := requestBody(s, *rowsPerReq)
				t0 := time.Now()
				resp, err := http.Post(base+"/predict", "application/json", bytes.NewReader(body))
				elapsed := time.Since(t0)
				st.sent++
				if err != nil {
					st.errs++
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					st.errs++
					continue
				}
				st.ok++
				hist.Observe(elapsed.Seconds())
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	rep := report{
		Target:      base,
		Concurrency: *concurrency,
		DurationSec: elapsed.Seconds(),
		RowsPerReq:  *rowsPerReq,
	}
	for i := range workers {
		rep.Sent += workers[i].sent
		rep.OK += workers[i].ok
		rep.Errors += workers[i].errs
	}
	rep.QPS = float64(rep.OK) / elapsed.Seconds()
	rep.RowsPerSec = rep.QPS * float64(*rowsPerReq)
	if hist.Count() > 0 {
		q := func(p float64) float64 { return 1000 * hist.Quantile(p) }
		rep.Latency = latencyMs{P50: q(0.50), P90: q(0.90), P99: q(0.99), Max: 1000 * hist.Max()}
	}

	enc, _ := json.MarshalIndent(rep, "", "  ")
	enc = append(enc, '\n')
	if *out != "" {
		if err := os.WriteFile(*out, enc, 0o644); err != nil {
			fatal(err)
		}
	} else {
		os.Stdout.Write(enc)
	}
	if rep.Errors > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: %d of %d requests failed\n", rep.Errors, rep.Sent)
		os.Exit(1)
	}
}

// modelDim asks /healthz for the live model's feature count so generated
// rows index real features.
func modelDim(base string) (int, error) {
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var health struct {
		Dim int `json:"model_dim"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		return 0, err
	}
	if resp.StatusCode != http.StatusOK || health.Dim <= 0 {
		return 0, fmt.Errorf("server not serving a model (healthz status %d)", resp.StatusCode)
	}
	return health.Dim, nil
}

// requestBody draws rows from the sampler and encodes a /predict JSON
// body — single-instance form for one row, instances array otherwise.
func requestBody(s *datasets.RowSampler, rows int) []byte {
	type instance struct {
		Indices []int32   `json:"indices"`
		Values  []float32 `json:"values"`
	}
	draw := func() instance {
		idx, val := s.Next()
		return instance{
			Indices: append([]int32(nil), idx...),
			Values:  append([]float32(nil), val...),
		}
	}
	var body any
	if rows == 1 {
		body = draw()
	} else {
		insts := make([]instance, rows)
		for i := range insts {
			insts[i] = draw()
		}
		body = map[string]any{"instances": insts}
	}
	b, _ := json.Marshal(body)
	return b
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
	os.Exit(1)
}
