// Command repro regenerates the figures of the paper's evaluation section.
//
// Usage:
//
//	repro -fig all                 # every figure at the default scale
//	repro -fig 1,2 -scale quick    # a fast smoke run of Figs. 1-2
//	repro -fig 6 -csv out/         # also write per-figure CSV files
//
// Each figure is trained for real (convergence is computed, not replayed);
// the time axes are simulated seconds from the perfmodel device and
// interconnect profiles (see DESIGN.md for the substitution contract).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"tpascd"
	"tpascd/internal/experiments"
	"tpascd/internal/report"
)

func main() {
	figFlag := flag.String("fig", "all", "comma-separated figure ids (1,2,3,4,5,6,8,9,10) or 'all'")
	scaleFlag := flag.String("scale", "default", "experiment scale: 'default' or 'quick'")
	cpuSolver := flag.String("cpu-solver", "", "local CPU solver of the distributed experiments (Figs. 3-6): "+tpascd.DriverList()+"; default scd")
	csvDir := flag.String("csv", "", "directory to write per-figure CSV files (optional)")
	chart := flag.Bool("chart", false, "render each figure as an ASCII chart")
	verify := flag.Bool("verify", false, "check the paper's qualitative claims against each figure; nonzero exit on failures")
	flag.Parse()

	var scale experiments.Scale
	switch *scaleFlag {
	case "default":
		scale = experiments.Default()
	case "quick":
		scale = experiments.Quick()
	default:
		fmt.Fprintf(os.Stderr, "repro: unknown scale %q\n", *scaleFlag)
		os.Exit(2)
	}
	if *cpuSolver != "" {
		name, err := tpascd.CanonicalDriver(*cpuSolver)
		if err != nil {
			fmt.Fprintf(os.Stderr, "repro: %v\n", err)
			os.Exit(2)
		}
		scale.CPUSolver = name
	}

	ids := experiments.FigureIDs()
	if *figFlag != "all" {
		ids = strings.Split(*figFlag, ",")
	}

	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "repro: %v\n", err)
			os.Exit(1)
		}
	}

	exitCode := 0
	for _, id := range ids {
		id = strings.TrimSpace(id)
		start := time.Now()
		figs, err := experiments.Run(id, scale)
		if err != nil {
			fmt.Fprintf(os.Stderr, "repro: figure %s: %v\n", id, err)
			exitCode = 1
			continue
		}
		fmt.Printf("--- figure %s (%s wall clock) ---\n", id, time.Since(start).Round(time.Millisecond))
		if *verify {
			if results := report.Verify(id, figs); len(results) > 0 {
				failures, err := report.Fprint(os.Stdout, results)
				if err != nil {
					fmt.Fprintf(os.Stderr, "repro: %v\n", err)
				}
				if failures > 0 {
					exitCode = 1
				}
			}
		}
		for _, fig := range figs {
			if err := fig.Fprint(os.Stdout, scale.Epsilons...); err != nil {
				fmt.Fprintf(os.Stderr, "repro: %v\n", err)
				exitCode = 1
			}
			if *chart {
				if err := fig.FprintChart(os.Stdout, 70, 16); err != nil {
					fmt.Fprintf(os.Stderr, "repro: %v\n", err)
					exitCode = 1
				}
			}
			if *csvDir != "" {
				path := filepath.Join(*csvDir, fig.Name+".csv")
				f, err := os.Create(path)
				if err != nil {
					fmt.Fprintf(os.Stderr, "repro: %v\n", err)
					exitCode = 1
					continue
				}
				if err := fig.WriteCSV(f); err != nil {
					fmt.Fprintf(os.Stderr, "repro: write %s: %v\n", path, err)
					exitCode = 1
				}
				f.Close()
				fmt.Printf("wrote %s\n", path)
			}
		}
		fmt.Println()
	}
	os.Exit(exitCode)
}
