// Command fleetreport merges the span JSONL files of the serving fleet
// — predrouter roots, per-replica predserve server and batch spans,
// shard-aggregator fan-out legs — into a single critical-path report:
// attempt trees per traced request, latency decomposed into queue,
// compute, network and hedge-wait, retry and hedge-win attribution per
// replica, and the slowest-N request timelines.
//
// Usage:
//
//	fleetreport [-json] [-o report.out] [-slowest N] router.jsonl serve0.jsonl ...
//
// The files are produced by predrouter/predserve -trace-jsonl (loadgen
// -trace-sample decides which requests carry trace IDs). The default
// output is a human-readable table; -json emits the machine-readable
// form. Training-run span files belong to cmd/obsreport, not here.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"tpascd/internal/obs"
	"tpascd/internal/obs/report"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit the report as JSON instead of a table")
	outPath := flag.String("o", "", "write the report to this file (default stdout)")
	slowest := flag.Int("slowest", 5, "how many slowest-request timelines to include")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: fleetreport [-json] [-o out] [-slowest N] spans.jsonl...\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if flag.NArg() == 0 {
		flag.Usage()
		os.Exit(2)
	}

	var events []obs.Event
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		evs, err := obs.ParseJSONL(f)
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		events = append(events, evs...)
	}

	rep, err := report.AnalyzeFleet(events, *slowest)
	if err != nil {
		fatal(err)
	}

	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		out = f
	}
	if *jsonOut {
		err = report.WriteFleetJSON(out, rep)
	} else {
		err = report.WriteFleetTable(out, rep)
	}
	if err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "fleetreport:", err)
	os.Exit(1)
}
