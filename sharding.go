package tpascd

import (
	"tpascd/internal/checkpoint"
	"tpascd/internal/shard"
)

// Sharding: when the model outgrows one process, its weight vector is
// partitioned into K contiguous coordinate ranges through this façade
// over internal/shard — shardsplit cuts a checkpoint into K shard
// checkpoints plus a manifest, each shard group serves its range from
// ordinary predserve replicas, and a ShardAggregator fans every
// /predict out to all groups, sums the partial margins exactly, and
// applies the model kind's link function once at the top. See
// cmd/shardsplit and predrouter -shards for the runnable pieces and
// DESIGN.md §11 for the plan/fingerprint/degradation contract.

// ShardPlan is the deterministic coordinate partition: shard i of K
// owns [i·dim/K, (i+1)·dim/K), fingerprinted against the exact model
// content so mismatched shard sets refuse to aggregate.
type ShardPlan = shard.Plan

// ShardManifest records one shardsplit: the plan, the shard checkpoint
// files, and optionally each shard group's replica addresses.
type ShardManifest = shard.Manifest

// ShardAggregator is the fan-out serving tier over K shard groups.
type ShardAggregator = shard.Aggregator

// ShardAggregatorConfig tunes the aggregator; its Route field is the
// per-group RouterConfig template (probes, budgets, chaos transport).
type ShardAggregatorConfig = shard.AggregatorConfig

// Degradation markers on aggregator responses: HeaderShardDown lists
// lost shard groups on a 503 (or alongside a stale answer), HeaderStale
// marks an answer served from the stale cache.
const (
	HeaderShardDown = shard.HeaderShardDown
	HeaderStale     = shard.HeaderStale
)

// SplitServingCheckpoint cuts the checkpoint file into shards shard
// checkpoints in outDir and writes manifest.json alongside them.
func SplitServingCheckpoint(ckptPath, outDir string, shards int) (ShardManifest, error) {
	return shard.SplitCheckpoint(ckptPath, outDir, shards)
}

// MergeShardCheckpoints reassembles shard checkpoint files into the
// original checkpoint at outPath — bitwise identical to what was split.
func MergeShardCheckpoints(outPath string, paths ...string) error {
	return checkpoint.MergeFiles(outPath, paths...)
}

// NewShardCheckpoint builds shard i of shards for a model of the given
// kind and global dimension: slice must be exactly the coordinates of
// shard i's range and fp the plan fingerprint (for distributed writers,
// CooperativeShardFingerprint). Constructing shards only through here —
// shardsplit and distworker -shard-out both do — is what makes a
// rank-written shard file bitwise identical to one cut from the merged
// checkpoint.
func NewShardCheckpoint(kind string, dim, shards, i int, slice []float32, fp string) (Checkpoint, error) {
	return checkpoint.NewShard(kind, dim, shards, i, slice, fp)
}

// ShardCheckpointFileName names shard i of shards for a checkpoint at
// path: "model.ckpt" → "model.shard0-of-3.ckpt".
func ShardCheckpointFileName(path string, i, shards int) string {
	return checkpoint.ShardFileName(path, i, shards)
}

// LoadShardManifest reads and validates a manifest file.
func LoadShardManifest(path string) (ShardManifest, error) { return shard.LoadManifest(path) }

// WriteShardManifest writes a manifest atomically.
func WriteShardManifest(path string, m ShardManifest) error { return shard.WriteManifest(path, m) }

// NewShardAggregator starts one health-probed replica-group client per
// shard and returns the fan-out tier. Serve its Handler with net/http;
// Close stops the probers.
func NewShardAggregator(cfg ShardAggregatorConfig) (*ShardAggregator, error) {
	return shard.NewAggregator(cfg)
}
